package dist

import (
	"bytes"
	"fmt"
	"net"
	"sync"

	"repro/internal/compress"
	"repro/internal/graph"
	"repro/internal/imm"
	"repro/internal/ingest"
	"repro/internal/rrr"
	"repro/internal/wire"
)

// RankServer is a worker rank's wire endpoint: it accepts root
// connections, caches broadcast graphs, and serves generation rounds.
// The generation itself is the exact slot-indexed path a shared-memory
// run uses (imm.GenerateSlots), so the member lists it ships are the
// member lists the root would have produced locally — the determinism
// contract that keeps seeds byte-identical at any rank count.
//
// One RankServer handles any number of concurrent roots (one goroutine
// per connection); the graph cache is shared across them, keyed by the
// root's content-derived broadcast names.
type RankServer struct {
	lis   net.Listener
	opt   ClusterOptions
	meter wire.Meter

	mu     sync.Mutex
	graphs map[string]*graph.Graph

	closeOnce sync.Once
	closed    chan struct{}
	wg        sync.WaitGroup
}

// ListenRank starts a worker rank's listener on addr (cfg.Peers[cfg.Rank]
// in cluster deployments). The caller runs Serve to process connections.
func ListenRank(addr string, opt ClusterOptions) (*RankServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: rank listen %s: %w", addr, err)
	}
	return &RankServer{
		lis:    lis,
		opt:    opt.normalized(),
		graphs: make(map[string]*graph.Graph),
		closed: make(chan struct{}),
	}, nil
}

// Addr returns the bound listen address (useful with ":0" listeners).
func (s *RankServer) Addr() string { return s.lis.Addr().String() }

// MeterTotals returns this rank's measured bytes-on-the-wire totals.
func (s *RankServer) MeterTotals() (bytesSent, bytesReceived, messages int64) {
	return s.meter.Totals()
}

// Serve accepts and processes root connections until Close. It returns
// nil after Close, or the first unexpected accept error.
func (s *RankServer) Serve() error {
	for {
		nc, err := s.lis.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return nil
			default:
				return fmt.Errorf("dist: rank accept: %w", err)
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(nc)
		}()
	}
}

// Close stops the listener and waits for in-flight connections to wind
// down. Connections parked waiting for the next frame are closed out
// from under their readers.
func (s *RankServer) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.closed)
		err = s.lis.Close()
	})
	s.wg.Wait()
	return err
}

func (s *RankServer) serveConn(nc net.Conn) {
	// Track the raw conn so Close can unblock a parked ReadFrame.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-s.closed:
			nc.Close()
		case <-done:
		}
	}()

	conn := wire.NewConn(nc, s.opt.FrameTimeout, &s.meter)
	// A healthy root may go quiet for arbitrarily long between rounds
	// (selection, HTTP idle time), so the worker blocks without a read
	// deadline; the root's liveness is its problem, ours is to answer.
	conn.SetReadTimeout(0)
	defer conn.Close()
	for {
		t, payload, err := conn.ReadFrame()
		if err != nil {
			return // disconnect or corruption: drop the conn, root redials
		}
		if err := s.handle(conn, t, payload); err != nil {
			return
		}
	}
}

// handle processes one frame; a non-nil return drops the connection
// (reply write failures — in-protocol errors are replied, not returned).
func (s *RankServer) handle(conn *wire.Conn, t wire.MsgType, payload []byte) error {
	fail := func(code string, err error) error {
		return conn.WriteFrame(wire.MsgError, wire.EncodeError(code, err.Error()))
	}
	switch t {
	case wire.MsgHello:
		if _, err := wire.DecodeHello(payload); err != nil {
			return fail("bad_request", err)
		}
		return conn.WriteFrame(wire.MsgHelloAck, wire.EncodeHello(wire.Hello{Tag: "rank@" + s.Addr()}))

	case wire.MsgGraph:
		name, snap, err := wire.DecodeGraph(payload)
		if err != nil {
			return fail("bad_request", err)
		}
		s.mu.Lock()
		_, have := s.graphs[name]
		s.mu.Unlock()
		if !have {
			g, _, err := ingest.ReadSnapshot(bytes.NewReader(snap))
			if err != nil {
				return fail("bad_graph", err)
			}
			s.mu.Lock()
			s.graphs[name] = g
			s.mu.Unlock()
		}
		return conn.WriteFrame(wire.MsgGraphAck, nil)

	case wire.MsgRound:
		rd, err := wire.DecodeRound(payload)
		if err != nil {
			return fail("bad_request", err)
		}
		s.mu.Lock()
		g := s.graphs[rd.Graph]
		s.mu.Unlock()
		if g == nil {
			return fail("unknown_graph", fmt.Errorf("graph %q not broadcast to this rank", rd.Graph))
		}
		if rd.Count < 0 || rd.Lo < 0 {
			return fail("bad_request", fmt.Errorf("invalid slot range [%d, %d+%d)", rd.Lo, rd.Lo, rd.Count))
		}
		rep, err := generateRound(g, rd)
		if err != nil {
			return fail("internal", err)
		}
		return conn.WriteFrame(wire.MsgRoundReply, wire.EncodeRoundReply(rep))

	case wire.MsgSeeds:
		if _, err := wire.DecodeSeeds(payload); err != nil {
			return fail("bad_request", err)
		}
		// The broadcast exists so every rank can evaluate the stopping
		// rule; a pure worker has no driver loop, so receipt is the whole
		// obligation.
		return conn.WriteFrame(wire.MsgSeedsAck, nil)

	default:
		return fail("bad_request", fmt.Errorf("unexpected frame %v", t))
	}
}

// generateRound runs one generation round on the worker: sample the slot
// range with the slot-indexed streams and encode the sorted member lists
// plus the dense occurrence counter. The worker always samples with the
// list-only representation — the member sequence is representation-
// independent, and the root rebuilds each set under its own policy.
func generateRound(g *graph.Graph, rd wire.Round) (wire.RoundReply, error) {
	out := make([]rrr.Set, rd.Count)
	members, edges := imm.GenerateSlots(g, rrr.ListOnlyPolicy(), rd.Seed, rd.Lo, out)
	rep := wire.RoundReply{
		Members: members,
		Edges:   edges,
		Sets:    make([][]byte, len(out)),
	}
	if rd.WantCounter {
		rep.Counts = make([]int64, g.N)
	}
	for i, set := range out {
		ls, ok := set.(*rrr.ListSet)
		if !ok {
			return wire.RoundReply{}, fmt.Errorf("dist: unexpected %s set from list-only generation", set.Kind())
		}
		raw := ls.Raw()
		if rep.Counts != nil {
			for _, v := range raw {
				rep.Counts[v]++
			}
		}
		rep.Sets[i] = compress.AppendPlain(make([]byte, 0, len(raw)+4), raw)
	}
	return rep, nil
}
