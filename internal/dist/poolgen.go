package dist

import (
	"sync"

	"repro/internal/graph"
	"repro/internal/imm"
	"repro/internal/rrr"
	"repro/internal/wire"
)

// clusterGen adapts a Cluster to imm.SlotGenerator: each requested slot
// range is split into one contiguous chunk per rank with the same
// partition formula as the driver engine, the root's own chunk is
// generated locally, the rest go out as Round requests in parallel, and
// every shipped member list is rebuilt under the engine's representation
// policy. A failed exchange falls back to local generation for that
// chunk only (slot determinism makes the fallback byte-identical), so
// GenerateSlots never fails — it only gets slower and bumps the
// cluster's failover counter.
type clusterGen struct {
	c      *Cluster
	g      *graph.Graph
	hint   string
	policy rrr.Policy
	seed   uint64
}

// PoolGenerator returns a slot generator that sources pool extensions
// for (g, seed) from the cluster's worker ranks. hint names the graph in
// broadcast messages (the serving layer passes its registry name);
// policy must be the representation policy of the engine the generator
// attaches to (imm.PolicyFromOptions of the engine options). Returns nil
// for single-rank clusters — there is nobody to fan out to, and the
// engine's local kernels (fused arenas included) are strictly better.
func (c *Cluster) PoolGenerator(hint string, g *graph.Graph, policy rrr.Policy, seed uint64) imm.SlotGenerator {
	if c == nil || c.Ranks() < 2 {
		return nil
	}
	return &clusterGen{c: c, g: g, hint: hint, policy: policy, seed: seed}
}

func (cg *clusterGen) GenerateSlots(lo int64, out []rrr.Set) (members, edges int64, err error) {
	count := int64(len(out))
	if count == 0 {
		return 0, 0, nil
	}
	ranks := int64(cg.c.Ranks())
	type chunk struct{ members, edges int64 }
	results := make([]chunk, ranks)
	var wg sync.WaitGroup
	for r := int64(0); r < ranks; r++ {
		clo := lo + r*count/ranks
		chi := lo + (r+1)*count/ranks
		if clo == chi {
			continue
		}
		wg.Add(1)
		go func(r, clo, chi int64) {
			defer wg.Done()
			seg := out[clo-lo : chi-lo]
			if r != 0 {
				if rep, err := cg.c.Round(int(r), cg.g, cg.hint, cg.seed, clo, chi-clo, false); err == nil {
					if m, e, ok := cg.decodeChunk(rep, seg); ok {
						results[r] = chunk{m, e}
						return
					}
				}
				cg.c.failovers.Add(1)
			}
			m, e := imm.GenerateSlots(cg.g, cg.policy, cg.seed, clo, seg)
			results[r] = chunk{m, e}
		}(r, clo, chi)
	}
	wg.Wait()
	for _, res := range results {
		members += res.members
		edges += res.edges
	}
	return members, edges, nil
}

// decodeChunk rebuilds one remote chunk's sets under the engine policy.
func (cg *clusterGen) decodeChunk(rep wire.RoundReply, seg []rrr.Set) (members, edges int64, ok bool) {
	if len(rep.Sets) != len(seg) {
		return 0, 0, false
	}
	for i, plain := range rep.Sets {
		verts, err := wire.DecodeSetMembers(plain)
		if err != nil {
			return 0, 0, false
		}
		seg[i] = cg.policy.Build(cg.g.N, verts)
	}
	return rep.Members, rep.Edges, true
}
