package dist

import (
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/imm"
	"repro/internal/ingest"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(8, 5), graph.IC, 7)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testOptions(ranks int) Options {
	opt := DefaultOptions()
	opt.Ranks = ranks
	opt.K = 6
	opt.Seed = 7
	opt.MaxTheta = 1500
	return opt
}

func sharedRun(t *testing.T, g *graph.Graph, opt Options) *imm.Result {
	t.Helper()
	res, err := imm.Run(g, opt.Options)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSingleRankMatchesSharedRun pins the Ranks=1 degradation: identical
// seeds, θ trajectory, and zero communication.
func TestSingleRankMatchesSharedRun(t *testing.T) {
	g := testGraph(t)
	opt := testOptions(1)
	shared := sharedRun(t, g, opt)
	res, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSeeds(t, shared.Seeds, res.Seeds)
	if res.Theta != shared.Theta || res.Rounds != shared.Rounds {
		t.Fatalf("trajectory diverged: theta %d vs %d, rounds %d vs %d",
			res.Theta, shared.Theta, res.Rounds, shared.Rounds)
	}
	if res.Comm.BytesSent != 0 || res.Comm.Messages != 0 {
		t.Fatalf("single rank communicated: %+v", res.Comm)
	}
}

// TestRankPartitioningDeterminism pins the core guarantee: any rank
// count returns seeds byte-identical to the shared-memory run, because
// slot-indexed RNG streams make the pool independent of who generates
// which slot.
func TestRankPartitioningDeterminism(t *testing.T) {
	g := testGraph(t)
	shared := sharedRun(t, g, testOptions(1))
	for _, ranks := range []int{2, 3, 5, 8} {
		res, err := Run(g, testOptions(ranks))
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		assertSameSeeds(t, shared.Seeds, res.Seeds)
		if res.Theta != shared.Theta {
			t.Fatalf("ranks=%d: theta %d vs shared %d", ranks, res.Theta, shared.Theta)
		}
		if res.Comm.BytesSent == 0 {
			t.Fatalf("ranks=%d: no communication recorded", ranks)
		}
	}
}

// TestCommMonotonicInRanks checks that the metered volume grows with the
// rank count: more ranks mean more counter reductions and a larger share
// of the pool crossing the wire.
func TestCommMonotonicInRanks(t *testing.T) {
	g := testGraph(t)
	var prev int64 = -1
	for _, ranks := range []int{1, 2, 4, 8} {
		res, err := Run(g, testOptions(ranks))
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		if res.Comm.BytesSent <= prev {
			t.Fatalf("ranks=%d: BytesSent %d not above previous %d", ranks, res.Comm.BytesSent, prev)
		}
		prev = res.Comm.BytesSent
	}
}

// TestCommAccountingConsistency checks the phase breakdown sums to the
// aggregate totals and that sent equals received (every byte sent is
// received exactly once).
func TestCommAccountingConsistency(t *testing.T) {
	g := testGraph(t)
	res, err := Run(g, testOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	c := res.Comm
	phases := []PhaseComm{c.ThetaExchange, c.CounterReduce, c.SetGather, c.SeedBroadcast}
	var sent, recv, msgs int64
	for _, p := range phases {
		sent += p.BytesSent
		recv += p.BytesReceived
		msgs += p.Messages
	}
	if sent != c.BytesSent || recv != c.BytesReceived || msgs != c.Messages {
		t.Fatalf("phase sums (%d,%d,%d) disagree with totals (%d,%d,%d)",
			sent, recv, msgs, c.BytesSent, c.BytesReceived, c.Messages)
	}
	if c.BytesSent != c.BytesReceived {
		t.Fatalf("sent %d != received %d", c.BytesSent, c.BytesReceived)
	}
	if c.SetGather.BytesSent == 0 || c.CounterReduce.BytesSent == 0 {
		t.Fatalf("data phases empty: %+v", c)
	}
}

// TestMaxThetaCappingAcrossRanks checks the cap binds the union of rank
// budgets, not each rank's share: the final pool never exceeds MaxTheta
// and matches the shared-memory θ exactly.
func TestMaxThetaCappingAcrossRanks(t *testing.T) {
	g := testGraph(t)
	for _, cap := range []int64{97, 500, 1500} {
		opt := testOptions(3)
		opt.MaxTheta = cap
		shared := sharedRun(t, g, opt)
		res, err := Run(g, opt)
		if err != nil {
			t.Fatalf("cap=%d: %v", cap, err)
		}
		if res.Theta > cap {
			t.Fatalf("cap=%d: theta %d exceeds cap", cap, res.Theta)
		}
		if res.Theta != shared.Theta {
			t.Fatalf("cap=%d: theta %d vs shared %d", cap, res.Theta, shared.Theta)
		}
		assertSameSeeds(t, shared.Seeds, res.Seeds)
	}
}

// TestMoreRanksThanTheta exercises ranks receiving empty slot slices.
func TestMoreRanksThanTheta(t *testing.T) {
	g := testGraph(t)
	opt := testOptions(8)
	opt.MaxTheta = 5
	shared := sharedRun(t, g, opt)
	res, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSeeds(t, shared.Seeds, res.Seeds)
}

func TestInvalidOptions(t *testing.T) {
	g := testGraph(t)
	if _, err := Run(g, testOptions(0)); err == nil {
		t.Fatal("Ranks=0 accepted")
	}
	if _, err := Run(nil, testOptions(2)); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func assertSameSeeds(t *testing.T, want, got []int32) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("seed count %d vs %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("seeds diverged: got %v want %v", got, want)
		}
	}
}

// TestEngineLabelNormalized pins that a Ripples request is relabeled:
// the distributed runtime always runs the EfficientIMM kernels.
func TestEngineLabelNormalized(t *testing.T) {
	g := testGraph(t)
	opt := testOptions(2)
	opt.Engine = imm.Ripples
	res, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != imm.Efficient {
		t.Fatalf("result labeled %v, want %v", res.Engine, imm.Efficient)
	}
	assertSameSeeds(t, sharedRun(t, g, opt).Seeds, res.Seeds)
}

// TestCompressedPoolAcrossRanks pins the compressed-pool guarantee at
// Ranks>1: ranks generate delta-encoded sets under the same policy as
// the shared-memory compressed run, the gather ships the compressed
// payloads (strictly fewer bytes than the slice-pool gather), and rank-0
// CELF selection over the gathered pool returns seeds byte-identical to
// both the shared-memory compressed run and the slice-pool run.
func TestCompressedPoolAcrossRanks(t *testing.T) {
	g := testGraph(t)
	slices := testOptions(1)
	slices.Pool = imm.PoolSlices
	refSlices := sharedRun(t, g, slices)

	compressed := testOptions(1)
	compressed.Pool = imm.PoolCompressed
	refCompressed := sharedRun(t, g, compressed)
	assertSameSeeds(t, refSlices.Seeds, refCompressed.Seeds)

	for _, ranks := range []int{2, 3, 4} {
		optC := testOptions(ranks)
		optC.Pool = imm.PoolCompressed
		resC, err := Run(g, optC)
		if err != nil {
			t.Fatal(err)
		}
		assertSameSeeds(t, refCompressed.Seeds, resC.Seeds)
		if resC.Theta != refCompressed.Theta {
			t.Fatalf("ranks=%d: theta %d vs %d", ranks, resC.Theta, refCompressed.Theta)
		}
		optS := testOptions(ranks)
		optS.Pool = imm.PoolSlices
		resS, err := Run(g, optS)
		if err != nil {
			t.Fatal(err)
		}
		if resC.Comm.SetGather.BytesSent >= resS.Comm.SetGather.BytesSent {
			t.Fatalf("ranks=%d: compressed gather %dB not below slices gather %dB",
				ranks, resC.Comm.SetGather.BytesSent, resS.Comm.SetGather.BytesSent)
		}
		if resC.Pool.SetBytes >= resS.Pool.SetBytes {
			t.Fatalf("ranks=%d: compressed pool %dB not below slices pool %dB",
				ranks, resC.Pool.SetBytes, resS.Pool.SetBytes)
		}
	}
}

// TestRunSnapshot pins the snapshot-fed distributed path: rank 0 loads
// the graph from a .imsnap file, seeds match the in-memory run exactly,
// and the graph broadcast is metered at the snapshot's wire size per
// non-root rank.
func TestRunSnapshot(t *testing.T) {
	g := testGraph(t)
	path := filepath.Join(t.TempDir(), "g.imsnap")
	if err := ingest.WriteSnapshotFile(path, g, 7); err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{1, 3} {
		opt := testOptions(ranks)
		direct, err := Run(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := RunSnapshot(path, opt)
		if err != nil {
			t.Fatal(err)
		}
		assertSameSeeds(t, direct.Seeds, snap.Seeds)
		wantBytes := int64(ranks-1) * ingest.SnapshotSize(g)
		if snap.Comm.GraphBroadcast.BytesSent != wantBytes {
			t.Fatalf("ranks=%d: graph broadcast %dB, want %dB",
				ranks, snap.Comm.GraphBroadcast.BytesSent, wantBytes)
		}
		if snap.Comm.BytesSent != direct.Comm.BytesSent+wantBytes {
			t.Fatalf("ranks=%d: broadcast not folded into aggregate", ranks)
		}
	}
	if _, err := RunSnapshot(filepath.Join(t.TempDir(), "missing.imsnap"), testOptions(2)); err == nil {
		t.Fatal("missing snapshot not surfaced")
	}
}
