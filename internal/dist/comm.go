package dist

// PhaseComm meters one class of exchange: how many point-to-point
// messages crossed the simulated network and how many payload bytes they
// carried. Every byte sent is received exactly once, so the two totals
// agree in aggregate; both are kept because per-rank accounting (a future
// per-rank report) distinguishes them.
type PhaseComm struct {
	BytesSent     int64
	BytesReceived int64
	Messages      int64
}

// Comm is the communication bill of one distributed run: aggregate
// totals plus the per-phase breakdown the scaling analysis needs to see
// where the volume comes from.
type Comm struct {
	BytesSent     int64
	BytesReceived int64
	Messages      int64

	// Measured* are actual bytes-on-the-wire totals from the framed TCP
	// transport (frame headers included), in contrast to the modeled
	// figures above, which price the exchanges analytically. Zero for
	// simulated (in-process) runs; populated by RunCluster and the
	// cluster-backed serving path. The two columns land side by side in
	// dist_comm_sweep.csv so the model can be checked against reality.
	MeasuredBytesSent     int64
	MeasuredBytesReceived int64
	MeasuredMessages      int64
	// Failovers counts remote generation rounds the root redid locally
	// after a worker became unreachable — slot determinism makes the
	// fallback byte-identical, so this is a health signal, not a
	// correctness one.
	Failovers int64

	// ThetaExchange covers the θ-estimation control traffic: the root
	// broadcasting each round's sample budget and the ranks allreducing
	// their round totals (pool size, member count).
	ThetaExchange PhaseComm
	// CounterReduce covers the reduction of per-rank occurrence counters
	// to the root — a dense n×8-byte vector per rank per round.
	CounterReduce PhaseComm
	// SetGather covers the gather of serialized RRR sets to the root for
	// Find_Most_Influential_Set. This is the data-dependent term: its
	// volume tracks the sampled coverage, not just n and the rank count.
	SetGather PhaseComm
	// SeedBroadcast covers the root broadcasting each round's selected
	// seed set and coverage so every rank can evaluate the stopping rule.
	SeedBroadcast PhaseComm
	// GraphBroadcast covers rank 0 shipping the input graph to the other
	// ranks when the run starts from a snapshot (RunSnapshot): one
	// message per non-root rank, each carrying the snapshot payload.
	GraphBroadcast PhaseComm
}

// record books messages carrying totalBytes of payload against a phase
// and the aggregate totals.
func (c *Comm) record(phase *PhaseComm, messages, totalBytes int64) {
	phase.Messages += messages
	phase.BytesSent += totalBytes
	phase.BytesReceived += totalBytes
	c.Messages += messages
	c.BytesSent += totalBytes
	c.BytesReceived += totalBytes
}
