// Package dist extends the shared-memory IMM engines across simulated
// message-passing ranks — the MPI extension the paper (Wu et al., SC
// 2024) lists as future work. Each logical rank owns a deterministic
// slice of the θ sample budget, generates its RRR sets from the
// slot-indexed RNG streams of internal/rng, and participates in
// allreduce/gather-style exchanges whose volume is metered into a Comm
// report. Because the slot-indexed streams make pool contents
// independent of who generates which slot, and the selection kernel is
// deterministic over a given pool, Run returns seeds byte-identical to
// the shared-memory imm.Run at the same Seed and MaxTheta — the property
// the tests pin — while reporting what the distribution would cost on a
// real interconnect.
package dist

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/imm"
	"repro/internal/ingest"
)

// Options configures a distributed run. The embedded imm.Options carry
// the algorithmic parameters (K, Epsilon, Seed, MaxTheta, the
// representation and update switches); Workers is the thread count of
// each simulated rank, used by the rank-0 selection kernel.
type Options struct {
	imm.Options

	// Ranks is the number of simulated message-passing ranks. 1 degrades
	// to a communication-free run equivalent to imm.Run.
	//
	// The embedded Engine field is ignored: the distributed runtime
	// always runs the EfficientIMM kernels (rank-partitioned generation,
	// counter allreduce, set-partitioned selection), and Run normalizes
	// the field so results are labeled accordingly. Seeds are unaffected
	// either way — both shared-memory engines select identical seeds on
	// the same pool.
	Ranks int
}

// DefaultOptions returns the paper's evaluation parameters (k=50, ε=0.5,
// all optimizations on) across 4 simulated ranks.
func DefaultOptions() Options {
	return Options{Options: imm.Defaults(), Ranks: 4}
}

// Result is the outcome of a distributed run: the shared-memory result
// fields plus the rank count and the metered communication volume.
type Result struct {
	imm.Result

	Ranks int
	Comm  Comm
}

// Run executes IMM on g across opt.Ranks simulated ranks. The θ
// estimation follows exactly the shared-memory driver (imm.RunEngine),
// so the sampling trajectory, final θ, and selected seeds match imm.Run
// at the same Seed and MaxTheta.
func Run(g *graph.Graph, opt Options) (*Result, error) {
	if opt.Ranks < 1 {
		return nil, fmt.Errorf("dist: Ranks must be at least 1, got %d", opt.Ranks)
	}
	if g == nil || g.N == 0 {
		return nil, fmt.Errorf("dist: empty graph")
	}
	// The distributed runtime is the EfficientIMM kernel family; label
	// the result as such even if the caller passed Ripples.
	opt.Engine = imm.Efficient
	eng := newEngine(g, opt)
	res, err := imm.RunEngine(g, opt.Options, eng)
	if err != nil {
		return nil, err
	}
	return &Result{Result: *res, Ranks: opt.Ranks, Comm: eng.comm}, nil
}

// RunCluster executes IMM with the non-root ranks' generation running on
// real worker processes over the framed TCP transport: rank chunks go
// out as Round requests, sets and counters come back and are merged at
// the gather/allreduce boundaries the simulated engine already has, and
// seed selections are broadcast back out. cl is the root's connected
// Cluster; opt.Ranks, when zero, defaults to the cluster size and must
// otherwise match it. Seeds are byte-identical to Run and to the
// shared-memory imm.Run at the same Seed and MaxTheta — workers generate
// from the same slot-indexed streams, and any unreachable worker's chunk
// is regenerated locally (counted in Comm.Failovers).
//
// The returned Comm carries both accounts: the modeled figures (same as
// a simulated run at this rank count) and the measured bytes-on-the-wire
// this run actually moved, taken as the delta of cl's meter.
func RunCluster(g *graph.Graph, opt Options, cl *Cluster) (*Result, error) {
	if cl == nil {
		return Run(g, opt)
	}
	if opt.Ranks == 0 {
		opt.Ranks = cl.Ranks()
	}
	if opt.Ranks != cl.Ranks() {
		return nil, fmt.Errorf("dist: Ranks=%d does not match the %d-rank cluster", opt.Ranks, cl.Ranks())
	}
	if g == nil || g.N == 0 {
		return nil, fmt.Errorf("dist: empty graph")
	}
	opt.Engine = imm.Efficient
	eng := newEngine(g, opt)
	eng.cluster = cl
	eng.hint = "run"

	sentBefore, recvBefore, msgsBefore := cl.MeterTotals()
	res, err := imm.RunEngine(g, opt.Options, eng)
	if err != nil {
		return nil, err
	}
	if ranks := int64(opt.Ranks); ranks > 1 {
		// Model the graph broadcast at the snapshot wire size per non-root
		// rank — the same convention as RunSnapshot — so the modeled and
		// measured columns price the same set of exchanges.
		if sg, serr := cl.share(g, eng.hint, opt.Seed); serr == nil {
			eng.comm.record(&eng.comm.GraphBroadcast, ranks-1, (ranks-1)*int64(len(sg.snap)))
		}
	}
	sent, recv, msgs := cl.MeterTotals()
	eng.comm.MeasuredBytesSent = sent - sentBefore
	eng.comm.MeasuredBytesReceived = recv - recvBefore
	eng.comm.MeasuredMessages = msgs - msgsBefore
	return &Result{Result: *res, Ranks: opt.Ranks, Comm: eng.comm}, nil
}

// RunSnapshot executes a distributed run whose input graph rank 0 loads
// from a binary .imsnap snapshot (internal/ingest) and broadcasts to
// the other ranks — the deployment shape of a real MPI job, where only
// the root touches the shared filesystem. The broadcast is metered into
// Comm.GraphBroadcast at the snapshot's wire size per non-root rank.
// Seeds are identical to Run on the equivalently ingested graph.
func RunSnapshot(path string, opt Options) (*Result, error) {
	g, info, err := ingest.ReadSnapshotFile(path)
	if err != nil {
		return nil, fmt.Errorf("dist: rank 0 snapshot load: %w", err)
	}
	res, err := Run(g, opt)
	if err != nil {
		return nil, err
	}
	if ranks := int64(opt.Ranks); ranks > 1 {
		res.Comm.record(&res.Comm.GraphBroadcast, ranks-1, (ranks-1)*info.Bytes)
	}
	return res, nil
}
