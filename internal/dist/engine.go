package dist

import (
	"time"

	"repro/internal/counter"
	"repro/internal/graph"
	"repro/internal/imm"
	"repro/internal/rrr"
)

// engine is the rank-partitioned imm.Engine. Each Generate call splits
// the new slice of the θ sample budget into one contiguous chunk per
// rank; ranks run concurrently (one goroutine each, standing in for an
// MPI process) and generate their chunk from the slot-indexed RNG
// streams, so the union of rank outputs is byte-identical to the pool a
// shared-memory Run builds. Each rank also folds its sets into a local
// occurrence counter as it generates (the fused kernel), then ships both
// — serialized sets and the dense counter — to rank 0, which merges them
// into the global pool and the allreduced base counter. Selection runs
// at rank 0 over the gathered pool through imm.SelectOnSets, and the
// resulting seed set is broadcast back. The transfers are zero-copy
// in-process, but every exchange is metered at the size a real wire
// transfer would cost.
type engine struct {
	g      *graph.Graph
	opt    Options
	policy rrr.Policy

	pool         []rrr.Set // rank 0's gathered global pool
	totalMembers int64
	base         *counter.Counter // allreduced occurrence counts over pool
	// selector holds rank 0's persistent sharded inverted index over
	// the gathered pool, extended with each round's new sets so every
	// set is indexed exactly once across the θ-estimation rounds —
	// the same incremental accounting as the shared-memory engine.
	selector *imm.Selector
	// arenas are the fused kernel's per-rank set storage (nil slots
	// until a rank first generates). They live as long as the engine —
	// and therefore as long as the gathered pool that aliases them.
	arenas []*rrr.Arena

	comm Comm
	bd   imm.Breakdown
}

func newEngine(g *graph.Graph, opt Options) *engine {
	if opt.Workers < 1 {
		opt.Workers = 1
	}
	return &engine{
		g:        g,
		opt:      opt,
		policy:   imm.PolicyFromOptions(opt.Options),
		base:     counter.New(g.N),
		selector: imm.NewSelector(g.N),
		arenas:   make([]*rrr.Arena, opt.Ranks),
	}
}

func (e *engine) SetCount() int64          { return int64(len(e.pool)) }
func (e *engine) Stats() rrr.Stats         { return rrr.Summarize(e.g.N, e.pool) }
func (e *engine) Breakdown() imm.Breakdown { return e.bd }

// PoolFootprint reports rank 0's gathered pool. The representation —
// and therefore the gather volume and the resident bytes — follows the
// caller's PoolKind through PolicyFromOptions, so a compressed-pool
// distributed run both ships and holds the delta-encoded payloads. The
// selection-side inverted index is transient (rebuilt per SelectOnSets
// call) and not counted as resident.
func (e *engine) PoolFootprint() imm.PoolFootprint {
	var set int64
	for _, s := range e.pool {
		set += s.Bytes()
	}
	return imm.PoolFootprint{SetBytes: set, RawBytes: 4 * e.totalMembers}
}

// rankRound is what one rank hands the root after a generation round.
type rankRound struct {
	rank    int
	lo, hi  int64
	counts  *counter.Counter
	members int64
	edges   int64
}

func (e *engine) Generate(target int64) {
	from := int64(len(e.pool))
	if target <= from {
		return
	}
	start := time.Now()
	count := target - from
	e.pool = append(e.pool, make([]rrr.Set, count)...)

	ranks := int64(e.opt.Ranks)
	// Root announces the round's sample budget (one 8-byte θ value per
	// non-root rank).
	e.comm.record(&e.comm.ThetaExchange, ranks-1, (ranks-1)*8)

	ch := make(chan rankRound, e.opt.Ranks)
	for r := int64(0); r < ranks; r++ {
		lo := from + r*count/ranks
		hi := from + (r+1)*count/ranks
		go func(r, lo, hi int64) {
			out := e.pool[lo:hi] // disjoint per-rank slice
			cnt := counter.New(e.g.N)
			var members, edges int64
			if e.opt.Kernel == imm.KernelFused {
				// Fused streaming kernel: each member lands in the rank's
				// arena and increments the rank counter as it is emitted,
				// replacing the post-pass over the finished sets.
				if e.arenas[r] == nil {
					e.arenas[r] = rrr.NewArena()
				}
				members, edges = imm.GenerateSlotsFused(e.g, e.policy, e.opt.Seed, lo, out, e.arenas[r], cnt)
			} else {
				members, edges = imm.GenerateSlots(e.g, e.policy, e.opt.Seed, lo, out)
				for _, s := range out {
					s.ForEach(func(v int32) { cnt.Inc(v) })
				}
			}
			ch <- rankRound{rank: int(r), lo: lo, hi: hi, counts: cnt, members: members, edges: edges}
		}(r, lo, hi)
	}

	var critical int64
	for i := int64(0); i < ranks; i++ {
		res := <-ch
		if res.rank != 0 {
			var setBytes int64
			for _, s := range e.pool[res.lo:res.hi] {
				setBytes += wireBytes(s)
			}
			e.comm.record(&e.comm.SetGather, 1, setBytes)
			e.comm.record(&e.comm.CounterReduce, 1, int64(e.g.N)*8)
		}
		e.base.AddFrom(res.counts)
		e.totalMembers += res.members
		// Critical path over ranks: edge traversals, list-sort work, and
		// the fused counter updates (charged double for the lock prefix)
		// — the same terms the shared-memory engine's SamplingModeled
		// accounts, so the figures stay comparable.
		cost := res.edges + imm.ModeledSortCost(e.policy, e.g.N, res.members, res.hi-res.lo) + 2*res.members
		if cost > critical {
			critical = cost
		}
	}
	// Round allreduce: every rank learns the global pool size and member
	// total (two 8-byte values both ways per non-root rank).
	e.comm.record(&e.comm.ThetaExchange, 2*(ranks-1), 2*(ranks-1)*16)

	// Fold the round's gathered sets into rank 0's selection index.
	e.selector.Extend(e.pool[from:], e.opt.Workers)

	e.bd.SamplingWall += time.Since(start)
	e.bd.SamplingModeled += float64(critical)
}

// SelectSeeds runs Find_Most_Influential_Set at rank 0 over the gathered
// pool (the persistent CELF selector, semantics of imm.SelectOnSets),
// seeded with the allreduced counter, then broadcasts the result.
func (e *engine) SelectSeeds(k int) ([]int32, float64) {
	start := time.Now()
	seeds, cov, ops := e.selector.Select(e.base, e.opt.Workers, k)
	e.bd.SelectionWall += time.Since(start)
	e.bd.SelectionModeled += ops
	if ranks := int64(e.opt.Ranks); ranks > 1 {
		payload := int64(len(seeds))*4 + 8 // seed ids + coverage
		e.comm.record(&e.comm.SeedBroadcast, ranks-1, (ranks-1)*payload)
	}
	return seeds, cov
}

// wireBytes is the serialized size of one RRR set on the simulated wire:
// a 16-byte header (slot id, representation kind, cardinality) plus the
// representation's payload — 4 bytes per member for lists, one bit per
// graph vertex for bitmaps.
func wireBytes(s rrr.Set) int64 { return 16 + s.Bytes() }
