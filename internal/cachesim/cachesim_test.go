package cachesim

import (
	"testing"

	"repro/internal/memmodel"
)

func tiny(t *testing.T) *Hierarchy {
	t.Helper()
	h, err := New(
		Config{SizeBytes: 1 << 10, Ways: 2, LineBytes: 64}, // 8 sets
		Config{SizeBytes: 4 << 10, Ways: 4, LineBytes: 64}, // 16 sets
	)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{SizeBytes: 0, Ways: 1, LineBytes: 64},
		{SizeBytes: 100, Ways: 3, LineBytes: 64},        // not divisible
		{SizeBytes: 3 * 64 * 2, Ways: 2, LineBytes: 64}, // 3 sets: not power of two
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	h := tiny(t)
	h.Access(0)
	st := h.Stats()
	if st.L1Misses != 1 || st.L2Misses != 1 {
		t.Fatalf("cold access: %+v", st)
	}
	h.Access(63) // same line
	st = h.Stats()
	if st.L1Hits != 1 {
		t.Fatalf("same-line access missed: %+v", st)
	}
	h.Access(64) // next line
	if st := h.Stats(); st.L1Misses != 2 {
		t.Fatalf("new line should miss: %+v", st)
	}
}

func TestLRUWithinSet(t *testing.T) {
	h := tiny(t)
	// L1 has 8 sets; addresses k*8*64 all map to set 0. 2 ways.
	a := func(i uint64) uint64 { return i * 8 * 64 }
	h.Access(a(0))
	h.Access(a(1))
	h.Access(a(0)) // refresh 0, so 1 is LRU
	h.Access(a(2)) // evicts 1
	h.Access(a(0)) // must still hit
	st := h.Stats()
	if st.L1Hits != 2 {
		t.Fatalf("expected 2 L1 hits, got %+v", st)
	}
	h.Access(a(1)) // was evicted → L1 miss
	if got := h.Stats().L1Misses; got != 4 {
		t.Fatalf("expected 4 L1 misses, got %d", got)
	}
}

func TestL2CatchesL1Evictions(t *testing.T) {
	h := tiny(t)
	a := func(i uint64) uint64 { return i * 8 * 64 } // L1 set 0
	h.Access(a(0))
	h.Access(a(1))
	h.Access(a(2)) // evicts a(0) from L1, but L2 still holds it
	h.Access(a(0))
	st := h.Stats()
	if st.L2Hits < 1 {
		t.Fatalf("L2 did not catch the L1 eviction: %+v", st)
	}
}

func TestWorkingSetFitsInL1(t *testing.T) {
	h := tiny(t)
	const lines = 8 // 512 bytes, fits the 1 KiB L1 easily
	for pass := 0; pass < 10; pass++ {
		for i := uint64(0); i < lines; i++ {
			h.Access(i * 64)
		}
	}
	st := h.Stats()
	if st.L1Misses != lines {
		t.Fatalf("resident working set missed %d times, want %d cold misses", st.L1Misses, lines)
	}
}

func TestStreamingThrashes(t *testing.T) {
	h := tiny(t)
	// Working set 16 KiB >> both levels → every access to a new line misses.
	const lines = 256
	for pass := 0; pass < 3; pass++ {
		for i := uint64(0); i < lines; i++ {
			h.Access(i * 64)
		}
	}
	st := h.Stats()
	if st.L1Misses < 3*lines*9/10 {
		t.Fatalf("streaming workload should thrash: %+v", st)
	}
}

func TestAccessRange(t *testing.T) {
	h := tiny(t)
	h.AccessRange(0, 64*5) // exactly 5 lines
	if st := h.Stats(); st.Accesses() != 5 {
		t.Fatalf("AccessRange touched %d lines, want 5", st.Accesses())
	}
	h.Reset()
	h.AccessRange(32, 64) // straddles 2 lines
	if st := h.Stats(); st.Accesses() != 2 {
		t.Fatalf("straddling range touched %d lines, want 2", st.Accesses())
	}
	h.AccessRange(0, 0) // no-op
}

func TestReset(t *testing.T) {
	h := tiny(t)
	h.Access(0)
	h.Reset()
	st := h.Stats()
	if st.L1Misses != 0 || st.L1Hits != 0 || st.L2Misses != 0 {
		t.Fatalf("Reset left counters: %+v", st)
	}
	h.Access(0)
	if h.Stats().L1Misses != 1 {
		t.Fatal("Reset did not clear contents")
	}
}

func TestEPYCLikeGeometry(t *testing.T) {
	h := EPYCLike()
	if h.l1.sets != 64 {
		t.Fatalf("L1 sets = %d, want 64 (32KiB/8way/64B)", h.l1.sets)
	}
	if h.l2.sets != 1024 {
		t.Fatalf("L2 sets = %d, want 1024", h.l2.sets)
	}
}

func TestCombinedMissesMetric(t *testing.T) {
	s := Stats{L1Misses: 10, L2Misses: 4, L1Hits: 100}
	if s.CombinedMisses() != 14 {
		t.Fatal("CombinedMisses wrong")
	}
	if s.Accesses() != 110 {
		t.Fatal("Accesses wrong")
	}
}

func TestLineMismatchRejected(t *testing.T) {
	_, err := New(
		Config{SizeBytes: 1 << 10, Ways: 2, LineBytes: 64},
		Config{SizeBytes: 4 << 10, Ways: 4, LineBytes: 128},
	)
	if err == nil {
		t.Fatal("line size mismatch accepted")
	}
}

// TestLocalityGapMirrorsTable4 is the package-level sanity check for the
// Table IV methodology: a kernel that streams sequentially through a
// region (set-partitioned counting) must produce far fewer misses than
// one that makes scattered repeated passes (vertex-partitioned binary
// search), on the same total access count.
func TestLocalityGapMirrorsTable4(t *testing.T) {
	sp := memmodel.NewSpace()
	region := sp.Alloc("rrrsets", 1<<20, 4) // 4 MiB of int32
	const total = 1 << 18

	seq := EPYCLike()
	for i := int64(0); i < total; i++ {
		seq.Access(region.Addr(i % (1 << 20)))
	}

	scattered := EPYCLike()
	stride := int64(104729) // prime >> cache, forces new sets
	for i := int64(0); i < total; i++ {
		scattered.Access(region.Addr((i * stride) % (1 << 20)))
	}

	if seqM, scatM := seq.Stats().CombinedMisses(), scattered.Stats().CombinedMisses(); scatM < 10*seqM {
		t.Fatalf("scattered misses %d not >> sequential %d", scatM, seqM)
	}
}
