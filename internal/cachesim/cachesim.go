// Package cachesim is a trace-driven set-associative cache simulator used
// to reproduce the paper's Table IV (L1+L2 cache misses of the two
// Find_Most_Influential_Set implementations).
//
// The paper measures hardware counters with perf; this environment has no
// PMU access, so the instrumented selection kernels feed their memory
// accesses (as logical addresses from internal/memmodel) through a
// two-level inclusive LRU hierarchy sized like the evaluation machine's
// EPYC cores (32 KiB 8-way L1D, 512 KiB 8-way private L2, 64 B lines).
// Miss ordering between algorithms — the quantity Table IV compares — is
// preserved by construction because both kernels are traced over
// identical inputs.
package cachesim

import (
	"fmt"

	"repro/internal/memmodel"
)

// Config sizes one cache level.
type Config struct {
	SizeBytes int
	Ways      int
	LineBytes int
}

// Validate reports whether the configuration is a legal power-of-two
// set-associative geometry.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cachesim: non-positive geometry %+v", c)
	}
	if c.SizeBytes%(c.Ways*c.LineBytes) != 0 {
		return fmt.Errorf("cachesim: size %d not divisible by ways*line %d", c.SizeBytes, c.Ways*c.LineBytes)
	}
	sets := c.Sets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cachesim: set count %d not a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

// level is one set-associative LRU cache level storing line tags.
type level struct {
	cfg      Config
	sets     int
	setMask  uint64
	lineBits uint
	// tags[set*ways+way]; age for LRU (bigger = more recent).
	tags  []uint64
	valid []bool
	age   []uint64
	clock uint64

	Hits, Misses int64
}

func newLevel(cfg Config) *level {
	sets := cfg.Sets()
	l := &level{
		cfg:     cfg,
		sets:    sets,
		setMask: uint64(sets - 1),
		tags:    make([]uint64, sets*cfg.Ways),
		valid:   make([]bool, sets*cfg.Ways),
		age:     make([]uint64, sets*cfg.Ways),
	}
	for b := cfg.LineBytes; b > 1; b >>= 1 {
		l.lineBits++
	}
	return l
}

// access looks up line (addr >> lineBits); returns true on hit. On miss
// the line is installed, evicting the LRU way.
func (l *level) access(line uint64) bool {
	set := line & l.setMask
	base := int(set) * l.cfg.Ways
	l.clock++
	for w := 0; w < l.cfg.Ways; w++ {
		i := base + w
		if l.valid[i] && l.tags[i] == line {
			l.age[i] = l.clock
			l.Hits++
			return true
		}
	}
	l.Misses++
	victim := base
	for w := 1; w < l.cfg.Ways; w++ {
		i := base + w
		if !l.valid[i] {
			victim = i
			break
		}
		if l.age[i] < l.age[victim] {
			victim = i
		}
	}
	l.tags[victim] = line
	l.valid[victim] = true
	l.age[victim] = l.clock
	return false
}

// Hierarchy is an L1+L2 cache pair. A miss in L1 probes L2; a miss in L2
// installs in both (inclusive fill).
type Hierarchy struct {
	l1, l2 *level
}

// EPYCLike returns a hierarchy matching one Zen3 core: 32 KiB 8-way L1D
// and 512 KiB 8-way L2, 64-byte lines.
func EPYCLike() *Hierarchy {
	h, err := New(
		Config{SizeBytes: 32 << 10, Ways: 8, LineBytes: memmodel.CacheLineBytes},
		Config{SizeBytes: 512 << 10, Ways: 8, LineBytes: memmodel.CacheLineBytes},
	)
	if err != nil {
		panic(err) // static configuration, cannot fail
	}
	return h
}

// New builds a hierarchy from explicit configurations.
func New(l1, l2 Config) (*Hierarchy, error) {
	if err := l1.Validate(); err != nil {
		return nil, err
	}
	if err := l2.Validate(); err != nil {
		return nil, err
	}
	if l1.LineBytes != l2.LineBytes {
		return nil, fmt.Errorf("cachesim: line size mismatch %d vs %d", l1.LineBytes, l2.LineBytes)
	}
	return &Hierarchy{l1: newLevel(l1), l2: newLevel(l2)}, nil
}

// Access simulates one byte access at addr.
func (h *Hierarchy) Access(addr uint64) {
	line := addr >> h.l1.lineBits
	if h.l1.access(line) {
		return
	}
	h.l2.access(line)
}

// AccessRange simulates a sequential scan of n bytes starting at addr,
// touching each covered cache line once.
func (h *Hierarchy) AccessRange(addr uint64, n int64) {
	if n <= 0 {
		return
	}
	lb := uint64(h.l1.cfg.LineBytes)
	first := addr / lb
	last := (addr + uint64(n) - 1) / lb
	for line := first; line <= last; line++ {
		if !h.l1.access(line) {
			h.l2.access(line)
		}
	}
}

// Stats is a snapshot of hit/miss counters.
type Stats struct {
	L1Hits, L1Misses int64
	L2Hits, L2Misses int64
}

// CombinedMisses returns L1+L2 misses, the Table IV metric.
func (s Stats) CombinedMisses() int64 { return s.L1Misses + s.L2Misses }

// Accesses returns the total number of simulated accesses.
func (s Stats) Accesses() int64 { return s.L1Hits + s.L1Misses }

// Stats returns the current counters.
func (h *Hierarchy) Stats() Stats {
	return Stats{
		L1Hits: h.l1.Hits, L1Misses: h.l1.Misses,
		L2Hits: h.l2.Hits, L2Misses: h.l2.Misses,
	}
}

// Reset clears contents and counters.
func (h *Hierarchy) Reset() {
	for _, l := range []*level{h.l1, h.l2} {
		for i := range l.valid {
			l.valid[i] = false
			l.age[i] = 0
		}
		l.Hits, l.Misses, l.clock = 0, 0, 0
	}
}
