package bitset

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestSetTestClear(t *testing.T) {
	b := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Test(i) {
			t.Fatalf("fresh bitset has bit %d set", i)
		}
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		b.Clear(i)
		if b.Test(i) {
			t.Fatalf("bit %d still set after Clear", i)
		}
	}
}

func TestCountMatchesNaive(t *testing.T) {
	b := New(500)
	set := map[int]bool{}
	idx := []int{3, 64, 65, 66, 129, 200, 499, 3, 64}
	for _, i := range idx {
		b.Set(i)
		set[i] = true
	}
	if got, want := b.Count(), len(set); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
}

func TestCountProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		b := New(1 << 16)
		seen := map[int]bool{}
		for _, r := range raw {
			b.Set(int(r))
			seen[int(r)] = true
		}
		return b.Count() == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTestAndSet(t *testing.T) {
	b := New(10)
	if b.TestAndSet(5) {
		t.Fatal("TestAndSet on clear bit returned true")
	}
	if !b.TestAndSet(5) {
		t.Fatal("TestAndSet on set bit returned false")
	}
}

func TestResetAndAny(t *testing.T) {
	b := New(100)
	if b.Any() {
		t.Fatal("fresh set is not empty")
	}
	b.Set(42)
	if !b.Any() {
		t.Fatal("Any false after Set")
	}
	b.Reset()
	if b.Any() || b.Count() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestClearList(t *testing.T) {
	b := New(200)
	idx := []int32{0, 63, 64, 150, 199}
	for _, i := range idx {
		b.Set(int(i))
	}
	b.ClearList(idx)
	if b.Any() {
		t.Fatal("ClearList left bits set")
	}
}

func TestForEachOrder(t *testing.T) {
	b := New(300)
	want := []int{1, 63, 64, 128, 255, 299}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d bits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order: got %v want %v", got, want)
		}
	}
}

func TestAppendIndices(t *testing.T) {
	b := New(70)
	b.Set(2)
	b.Set(69)
	got := b.AppendIndices([]int32{7})
	if len(got) != 3 || got[0] != 7 || got[1] != 2 || got[2] != 69 {
		t.Fatalf("AppendIndices = %v", got)
	}
}

func TestUnionIntersects(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(1)
	b.Set(2)
	if a.Intersects(b) {
		t.Fatal("disjoint sets reported intersecting")
	}
	a.Union(b)
	if !a.Test(1) || !a.Test(2) {
		t.Fatal("Union lost bits")
	}
	if !a.Intersects(b) {
		t.Fatal("overlapping sets reported disjoint")
	}
}

func TestUnionSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Union with mismatched sizes did not panic")
		}
	}()
	New(10).Union(New(20))
}

func TestClone(t *testing.T) {
	a := New(100)
	a.Set(7)
	c := a.Clone()
	c.Set(8)
	if a.Test(8) {
		t.Fatal("Clone shares storage with original")
	}
	if !c.Test(7) {
		t.Fatal("Clone lost bit")
	}
}

func TestAtomicBasic(t *testing.T) {
	a := NewAtomic(130)
	a.Set(129)
	if !a.Test(129) {
		t.Fatal("atomic Set/Test failed")
	}
	if got := a.Count(); got != 1 {
		t.Fatalf("Count = %d, want 1", got)
	}
	if a.TestAndSet(129) != true {
		t.Fatal("TestAndSet on set bit returned false")
	}
	if a.TestAndSet(1) != false {
		t.Fatal("TestAndSet on clear bit returned true")
	}
	a.Reset()
	if a.Count() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestAtomicConcurrentSet(t *testing.T) {
	const n = 4096
	a := NewAtomic(n)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 8 {
				a.Set(i)
			}
		}(w)
	}
	wg.Wait()
	if got := a.Count(); got != n {
		t.Fatalf("after concurrent sets Count = %d, want %d", got, n)
	}
}

func TestAtomicConcurrentTestAndSetUnique(t *testing.T) {
	// Exactly one goroutine must win each bit.
	const n = 1 << 12
	a := NewAtomic(n)
	wins := make([]int64, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if !a.TestAndSet(i) {
					wins[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, v := range wins {
		total += v
	}
	if total != n {
		t.Fatalf("total wins = %d, want %d (each bit won exactly once)", total, n)
	}
}

func TestPlainMatchesAtomicSingleThread(t *testing.T) {
	p := New(1000)
	a := NewAtomic(1000)
	idx := []int{5, 999, 64, 65, 500, 5}
	for _, i := range idx {
		p.Set(i)
		a.Set(i)
	}
	for i := 0; i < 1000; i++ {
		if p.Test(i) != a.Test(i) {
			t.Fatalf("plain and atomic disagree at bit %d", i)
		}
	}
}

func BenchmarkSet(b *testing.B) {
	s := New(1 << 20)
	for i := 0; i < b.N; i++ {
		s.Set(i & (1<<20 - 1))
	}
}

func BenchmarkTest(b *testing.B) {
	s := New(1 << 20)
	for i := 0; i < 1<<20; i += 3 {
		s.Set(i)
	}
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = s.Test(i & (1<<20 - 1))
	}
	_ = sink
}

func BenchmarkAtomicSet(b *testing.B) {
	s := NewAtomic(1 << 20)
	for i := 0; i < b.N; i++ {
		s.Set(i & (1<<20 - 1))
	}
}

func TestGrowPreservesBits(t *testing.T) {
	b := New(10)
	b.Set(3)
	b.Set(9)
	b.Grow(5) // shrink request: no-op
	if b.Len() != 10 {
		t.Fatalf("Len = %d after no-op grow", b.Len())
	}
	b.Grow(1000)
	if b.Len() != 1000 {
		t.Fatalf("Len = %d", b.Len())
	}
	if !b.Test(3) || !b.Test(9) || b.Test(4) {
		t.Fatal("bits lost across Grow")
	}
	b.Set(999)
	if !b.Test(999) || b.Count() != 3 {
		t.Fatalf("post-grow bits wrong: count=%d", b.Count())
	}
	// Growing within the same word capacity must also extend Len.
	c := New(1)
	c.Set(0)
	c.Grow(60)
	c.Set(59)
	if !c.Test(0) || !c.Test(59) {
		t.Fatal("same-word grow lost bits")
	}
}

func TestSetManyClearMany(t *testing.T) {
	const n = 300
	b := New(n)
	ref := New(n)
	// Mixed run lengths: consecutive indices inside one word (the
	// folded fast path), word-boundary crossings, and isolated bits.
	idx := []int32{0, 1, 2, 3, 62, 63, 64, 65, 100, 130, 131, 255, 299}
	b.SetMany(idx)
	for _, v := range idx {
		ref.Set(int(v))
	}
	for v := 0; v < n; v++ {
		if b.Test(v) != ref.Test(v) {
			t.Fatalf("SetMany bit %d = %v, want %v", v, b.Test(v), ref.Test(v))
		}
	}
	if b.Count() != len(idx) {
		t.Fatalf("Count = %d, want %d", b.Count(), len(idx))
	}
	// Clearing a subset leaves exactly the rest.
	sub := idx[:7]
	b.ClearMany(sub)
	for _, v := range sub {
		if b.Test(int(v)) {
			t.Fatalf("ClearMany left bit %d set", v)
		}
	}
	if b.Count() != len(idx)-len(sub) {
		t.Fatalf("post-clear Count = %d, want %d", b.Count(), len(idx)-len(sub))
	}
	b.ClearMany(idx) // clearing already-clear bits is a no-op
	if b.Any() {
		t.Fatal("bits survived full ClearMany")
	}
}

func TestSetManyEmpty(t *testing.T) {
	b := New(64)
	b.SetMany(nil)
	b.ClearMany(nil)
	if b.Any() {
		t.Fatal("empty batch mutated the set")
	}
}
