// Package bitset implements dense fixed-size bit vectors.
//
// Two variants are provided. Bitset is the plain single-owner vector used
// for per-worker visited maps during reverse BFS. Atomic wraps the same
// storage with atomic word operations for the rare structures that are
// written concurrently (for example shared coverage marks during seed
// selection). Keeping the two variants separate keeps the hot sequential
// path free of atomic overhead.
package bitset

import (
	"math/bits"
	"sync/atomic"
)

const wordBits = 64

// Bitset is a fixed-size dense bit vector. The zero value is an empty
// set of size 0; use New for a sized set.
type Bitset struct {
	words []uint64
	n     int
}

// New returns a Bitset capable of holding n bits, all clear.
func New(n int) *Bitset {
	if n < 0 {
		panic("bitset: negative size")
	}
	return &Bitset{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromWords adopts an existing word slice as a Bitset holding n bits,
// without copying. The slice must hold exactly (n+63)/64 words; bits at
// positions >= n must be clear. The pool-snapshot thaw path uses this to
// alias bitmap rows straight out of a memory-mapped file, so callers
// adopting shared storage must treat the set as read-only.
func FromWords(words []uint64, n int) *Bitset {
	if n < 0 {
		panic("bitset: negative size")
	}
	if len(words) != (n+wordBits-1)/wordBits {
		panic("bitset: FromWords word count mismatch")
	}
	return &Bitset{words: words, n: n}
}

// Len returns the number of bits the set can hold.
func (b *Bitset) Len() int { return b.n }

// Set sets bit i.
func (b *Bitset) Set(i int) {
	b.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear clears bit i.
func (b *Bitset) Clear(i int) {
	b.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Test reports whether bit i is set.
func (b *Bitset) Test(i int) bool {
	return b.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// TestAndSet sets bit i and reports whether it was already set.
func (b *Bitset) TestAndSet(i int) bool {
	w := &b.words[i/wordBits]
	mask := uint64(1) << uint(i%wordBits)
	old := *w&mask != 0
	*w |= mask
	return old
}

// Grow extends the set so it can hold at least n bits, preserving the
// bits already set. Shrinking is a no-op. The incremental structures
// that track a growing RRR pool (per-shard coverage marks) grow in place
// instead of reallocating a fresh set every θ round.
func (b *Bitset) Grow(n int) {
	if n <= b.n {
		return
	}
	words := (n + wordBits - 1) / wordBits
	if words > len(b.words) {
		grown := make([]uint64, words)
		copy(grown, b.words)
		b.words = grown
	}
	b.n = n
}

// Reset clears every bit. It touches every word, so for sparse occupancy
// prefer ClearList.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// ClearList clears exactly the listed bits. When only a few bits are set
// this is far cheaper than Reset — the IMM sampling loop reuses one
// visited bitmap per worker across millions of BFS runs and clears only
// the vertices the last run touched.
func (b *Bitset) ClearList(idx []int32) {
	for _, i := range idx {
		b.Clear(int(i))
	}
}

// SetMany sets every listed bit. Runs of indices that fall in the same
// word are folded into a single OR, so the common case — a sorted or
// locality-friendly list, such as an RRR member list or BFS discovery
// order — is set word-at-a-time instead of bit-at-a-time. Duplicates are
// harmless (OR is idempotent); callers tracking cardinality must pass a
// unique list.
func (b *Bitset) SetMany(idx []int32) {
	for i := 0; i < len(idx); {
		wi := int(idx[i]) / wordBits
		mask := uint64(1) << uint(int(idx[i])%wordBits)
		i++
		for i < len(idx) && int(idx[i])/wordBits == wi {
			mask |= 1 << uint(int(idx[i])%wordBits)
			i++
		}
		b.words[wi] |= mask
	}
}

// ClearMany clears every listed bit, folding same-word runs into a single
// AND-NOT the way SetMany folds sets. The fused sampling kernel uses it
// to wipe the visited bitmap from the traversal's discovery list, whose
// word locality (CSR neighbor order) makes the fold effective.
func (b *Bitset) ClearMany(idx []int32) {
	for i := 0; i < len(idx); {
		wi := int(idx[i]) / wordBits
		mask := uint64(1) << uint(int(idx[i])%wordBits)
		i++
		for i < len(idx) && int(idx[i])/wordBits == wi {
			mask |= 1 << uint(int(idx[i])%wordBits)
			i++
		}
		b.words[wi] &^= mask
	}
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether any bit is set.
func (b *Bitset) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Union sets b to b ∪ other. Both sets must have the same length.
func (b *Bitset) Union(other *Bitset) {
	if b.n != other.n {
		panic("bitset: size mismatch in Union")
	}
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// Intersects reports whether b and other share any set bit.
func (b *Bitset) Intersects(other *Bitset) bool {
	if b.n != other.n {
		panic("bitset: size mismatch in Intersects")
	}
	for i, w := range other.words {
		if b.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// ForEach calls fn for every set bit in ascending order.
func (b *Bitset) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			fn(wi*wordBits + bit)
			w &= w - 1
		}
	}
}

// AppendIndices appends the indices of all set bits to dst and returns
// the extended slice.
func (b *Bitset) AppendIndices(dst []int32) []int32 {
	b.ForEach(func(i int) { dst = append(dst, int32(i)) })
	return dst
}

// Words exposes the raw backing words for bulk operations such as cache
// simulation address generation. The caller must not resize it.
func (b *Bitset) Words() []uint64 { return b.words }

// Clone returns a deep copy of b.
func (b *Bitset) Clone() *Bitset {
	c := New(b.n)
	copy(c.words, b.words)
	return c
}

// Atomic is a dense bit vector safe for concurrent Set/Test. Bit clears
// are not synchronized with sets and must be externally quiesced, which
// matches its use as a write-once coverage mark within a selection round.
type Atomic struct {
	words []uint64
	n     int
}

// NewAtomic returns an Atomic bitset holding n bits, all clear.
func NewAtomic(n int) *Atomic {
	if n < 0 {
		panic("bitset: negative size")
	}
	return &Atomic{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the number of bits the set can hold.
func (a *Atomic) Len() int { return a.n }

// Set atomically sets bit i.
func (a *Atomic) Set(i int) {
	w := &a.words[i/wordBits]
	mask := uint64(1) << uint(i%wordBits)
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 || atomic.CompareAndSwapUint64(w, old, old|mask) {
			return
		}
	}
}

// TestAndSet atomically sets bit i and reports whether it was already set.
func (a *Atomic) TestAndSet(i int) bool {
	w := &a.words[i/wordBits]
	mask := uint64(1) << uint(i%wordBits)
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 {
			return true
		}
		if atomic.CompareAndSwapUint64(w, old, old|mask) {
			return false
		}
	}
}

// Test atomically reports whether bit i is set.
func (a *Atomic) Test(i int) bool {
	return atomic.LoadUint64(&a.words[i/wordBits])&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of set bits. It is only exact while no
// concurrent writers are active.
func (a *Atomic) Count() int {
	c := 0
	for i := range a.words {
		c += bits.OnesCount64(atomic.LoadUint64(&a.words[i]))
	}
	return c
}

// Reset clears all bits. Callers must quiesce writers first.
func (a *Atomic) Reset() {
	for i := range a.words {
		atomic.StoreUint64(&a.words[i], 0)
	}
}
