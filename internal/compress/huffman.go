package compress

import (
	"container/heap"
	"fmt"
	"math/bits"
)

// Canonical Huffman coding over byte symbols. The header stores one code
// length per symbol (256 nibble-packed... kept simple: one byte each),
// which is enough to rebuild the canonical code on decode. Code lengths
// are capped at 32 bits, far above what 256 symbols can require (a
// Huffman code over n symbols never exceeds n-1 bits, and practical
// varint-delta streams stay under 16).

const maxSymbols = 256

type hNode struct {
	freq        int64
	symbol      int // -1 for internal
	left, right int // indexes into the node arena
}

type hHeap struct {
	arena []hNode
	order []int
}

func (h *hHeap) Len() int { return len(h.order) }
func (h *hHeap) Less(i, j int) bool {
	a, b := h.arena[h.order[i]], h.arena[h.order[j]]
	if a.freq != b.freq {
		return a.freq < b.freq
	}
	// Deterministic tie-break on symbol/index keeps encodes reproducible.
	return h.order[i] < h.order[j]
}
func (h *hHeap) Swap(i, j int)      { h.order[i], h.order[j] = h.order[j], h.order[i] }
func (h *hHeap) Push(x interface{}) { h.order = append(h.order, x.(int)) }
func (h *hHeap) Pop() interface{} {
	n := len(h.order)
	v := h.order[n-1]
	h.order = h.order[:n-1]
	return v
}

// codeLengths computes Huffman code lengths for the byte frequencies.
func codeLengths(freq [maxSymbols]int64) [maxSymbols]uint8 {
	var lengths [maxSymbols]uint8
	arena := make([]hNode, 0, 2*maxSymbols)
	h := &hHeap{arena: arena}
	for s, f := range freq {
		if f > 0 {
			h.arena = append(h.arena, hNode{freq: f, symbol: s, left: -1, right: -1})
			h.order = append(h.order, len(h.arena)-1)
		}
	}
	switch len(h.order) {
	case 0:
		return lengths
	case 1:
		lengths[h.arena[h.order[0]].symbol] = 1
		return lengths
	}
	heap.Init(h)
	for h.Len() > 1 {
		a := heap.Pop(h).(int)
		b := heap.Pop(h).(int)
		h.arena = append(h.arena, hNode{freq: h.arena[a].freq + h.arena[b].freq, symbol: -1, left: a, right: b})
		heap.Push(h, len(h.arena)-1)
	}
	root := h.order[0]
	// Iterative depth assignment.
	type frame struct {
		node  int
		depth uint8
	}
	stack := []frame{{root, 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := h.arena[f.node]
		if n.symbol >= 0 {
			lengths[n.symbol] = f.depth
			continue
		}
		stack = append(stack, frame{n.left, f.depth + 1}, frame{n.right, f.depth + 1})
	}
	return lengths
}

// canonicalCodes assigns canonical codes from lengths: symbols sorted by
// (length, symbol) receive consecutive code values.
func canonicalCodes(lengths [maxSymbols]uint8) (codes [maxSymbols]uint32, err error) {
	var countPerLen [33]int
	maxLen := uint8(0)
	for _, l := range lengths {
		if l > 32 {
			return codes, fmt.Errorf("compress: code length %d exceeds 32", l)
		}
		countPerLen[l]++
		if l > maxLen {
			maxLen = l
		}
	}
	// The standard canonical construction:
	// next[l] = (next[l-1] + count[l-1]) << 1, with count[0] = 0
	// (length 0 marks unused symbols, which get no code).
	countPerLen[0] = 0
	var nextCode [33]uint32
	code := uint32(0)
	for l := uint8(1); l <= maxLen; l++ {
		code = (code + uint32(countPerLen[l-1])) << 1
		nextCode[l] = code
	}
	for s := 0; s < maxSymbols; s++ {
		if l := lengths[s]; l > 0 {
			codes[s] = nextCode[l]
			nextCode[l]++
		}
	}
	return codes, nil
}

// huffmanEncode compresses raw bytes: 256-byte length header followed by
// the packed bitstream.
func huffmanEncode(raw []byte) ([]byte, error) {
	var freq [maxSymbols]int64
	for _, b := range raw {
		freq[b]++
	}
	lengths := codeLengths(freq)
	codes, err := canonicalCodes(lengths)
	if err != nil {
		return nil, err
	}
	out := make([]byte, maxSymbols, maxSymbols+len(raw)/2+8)
	for s := 0; s < maxSymbols; s++ {
		out[s] = lengths[s]
	}
	var acc uint64
	var nbits uint
	for _, b := range raw {
		l := uint(lengths[b])
		acc = acc<<l | uint64(codes[b])
		nbits += l
		for nbits >= 8 {
			nbits -= 8
			out = append(out, byte(acc>>nbits))
		}
	}
	if nbits > 0 {
		out = append(out, byte(acc<<(8-nbits)))
	}
	return out, nil
}

// huffmanDecode expands a huffmanEncode stream back to rawLen bytes.
func huffmanDecode(data []byte, rawLen int) ([]byte, error) {
	if len(data) < maxSymbols {
		return nil, fmt.Errorf("compress: truncated huffman header")
	}
	var lengths [maxSymbols]uint8
	maxLen := uint8(0)
	for s := 0; s < maxSymbols; s++ {
		lengths[s] = data[s]
		if lengths[s] > maxLen {
			maxLen = lengths[s]
		}
	}
	if rawLen == 0 {
		return nil, nil
	}
	if maxLen == 0 {
		return nil, fmt.Errorf("compress: empty code for non-empty payload")
	}
	codes, err := canonicalCodes(lengths)
	if err != nil {
		return nil, err
	}
	// Decode table keyed by (length, code): firstCode/firstIndex per
	// length plus symbols sorted canonically.
	var countPerLen [33]int
	for _, l := range lengths {
		countPerLen[l]++
	}
	var symbols []byte
	for l := uint8(1); l <= maxLen; l++ {
		for s := 0; s < maxSymbols; s++ {
			if lengths[s] == l {
				symbols = append(symbols, byte(s))
			}
		}
	}
	var firstCode [33]uint32
	var firstIndex [33]int
	idx := 0
	for l := uint8(1); l <= maxLen; l++ {
		count := countPerLen[l]
		if count > 0 {
			firstCode[l] = codes[symbols[idx]]
			firstIndex[l] = idx
			idx += count
		}
	}

	payload := data[maxSymbols:]
	out := make([]byte, 0, rawLen)
	var acc uint32
	var accLen uint8
	pos := 0
	for len(out) < rawLen {
		// Refill.
		for accLen <= 24 && pos < len(payload) {
			acc |= uint32(payload[pos]) << (24 - accLen)
			accLen += 8
			pos++
		}
		if accLen == 0 {
			return nil, fmt.Errorf("compress: bitstream exhausted at byte %d/%d", len(out), rawLen)
		}
		matched := false
		for l := uint8(1); l <= maxLen && l <= accLen; l++ {
			if countPerLen[l] == 0 {
				continue
			}
			code := acc >> (32 - l)
			offset := int(code) - int(firstCode[l])
			if offset >= 0 && offset < countPerLen[l] {
				out = append(out, symbols[firstIndex[l]+offset])
				acc <<= l
				accLen -= l
				matched = true
				break
			}
		}
		if !matched {
			return nil, fmt.Errorf("compress: invalid code in bitstream")
		}
	}
	return out, nil
}

// CompressionRatio returns uncompressed/compressed size for a sorted
// vertex list, for reporting.
func CompressionRatio(sorted []int32) (float64, error) {
	data, err := Encode(sorted)
	if err != nil {
		return 0, err
	}
	if len(data) == 0 {
		return 0, nil
	}
	return float64(len(sorted)*4) / float64(len(data)), nil
}

var _ = bits.Len32 // reserved for future table-driven decode
