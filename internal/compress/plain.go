package compress

import "fmt"

// Plain delta-varint coding of sorted vertex lists — the pool-facing
// sibling of the Huffman codec above. Encode/Decode pay a 256-byte
// canonical-code header per set, which is fine for the footprint studies
// they were written for but dwarfs the payload of a typical RRR set (a
// handful of one-byte deltas). The plain layout drops the entropy stage
// and keeps only the part that matters at pool granularity:
//
//	varint(count) | varint(first) | varint(delta-1)...
//
// Successive members are strictly increasing, so every delta is at least
// one and the -1 bias keeps single-step runs in one byte. Decoding is a
// single forward scan with no tables, cheap enough to sit on the
// selection hot path.

// AppendPlain appends the delta-varint encoding of sorted to dst and
// returns the extended slice. sorted must be strictly increasing and
// non-negative; AppendPlain does not validate (the pool sorts and
// dedups before encoding).
func AppendPlain(dst []byte, sorted []int32) []byte {
	dst = appendUvarint(dst, uint64(len(sorted)))
	prev := int64(-1)
	for _, v := range sorted {
		dst = appendUvarint(dst, uint64(int64(v)-prev-1))
		prev = int64(v)
	}
	return dst
}

// PlainCount returns the member count of a plain encoding without
// decoding the payload.
func PlainCount(data []byte) (int, error) {
	count, n := readUvarint(data)
	if n <= 0 {
		return 0, fmt.Errorf("compress: truncated plain count")
	}
	return int(count), nil
}

// DecodePlain reverses AppendPlain, appending the vertices to dst.
func DecodePlain(data []byte, dst []int32) ([]int32, error) {
	err := ForEachPlain(data, func(v int32) { dst = append(dst, v) })
	return dst, err
}

// ForEachPlain visits the members of a plain encoding in ascending order
// without materializing the list.
func ForEachPlain(data []byte, fn func(v int32)) error {
	count, n := readUvarint(data)
	if n <= 0 {
		return fmt.Errorf("compress: truncated plain count")
	}
	data = data[n:]
	prev := int64(-1)
	for i := uint64(0); i < count; i++ {
		delta, n := readUvarint(data)
		if n <= 0 {
			return fmt.Errorf("compress: truncated plain delta %d", i)
		}
		data = data[n:]
		prev += int64(delta) + 1
		fn(int32(prev))
	}
	return nil
}

// PlainContains reports membership by scanning the deltas, stopping as
// soon as the running value reaches v. No allocation.
func PlainContains(data []byte, v int32) bool {
	count, n := readUvarint(data)
	if n <= 0 {
		return false
	}
	data = data[n:]
	prev := int64(-1)
	for i := uint64(0); i < count; i++ {
		delta, n := readUvarint(data)
		if n <= 0 {
			return false
		}
		data = data[n:]
		prev += int64(delta) + 1
		if prev >= int64(v) {
			return prev == int64(v)
		}
	}
	return false
}
