// Package compress implements an HBMax-style compressed representation
// of RRR sets (Chen et al., PACT'22, discussed in the paper's related
// work): sorted vertex lists are delta-encoded, varint-packed and
// Huffman-coded. The representation cuts the memory footprint well below
// both plain lists and bitmaps, at the cost of decode work on every
// access — exactly the codec-overhead trade-off the paper cites as its
// reason to prefer the adaptive list/bitmap scheme. The module exists so
// that trade-off can be measured rather than asserted; see the
// compression benches.
package compress

import (
	"fmt"
	"sort"
)

// Encode compresses a sorted, unique vertex list. The layout is:
//
//	varint(count) | varint(rawLen) | huffman header | huffman payload
//
// where the payload is the byte stream of varint-encoded deltas
// (first vertex absolute, successors delta-1 since entries are strictly
// increasing).
func Encode(sorted []int32) ([]byte, error) {
	for i := 1; i < len(sorted); i++ {
		if sorted[i] <= sorted[i-1] {
			return nil, fmt.Errorf("compress: input not strictly sorted at %d", i)
		}
	}
	raw := make([]byte, 0, len(sorted)*2)
	prev := int64(-1)
	for _, v := range sorted {
		delta := int64(v) - prev - 1
		raw = appendUvarint(raw, uint64(delta))
		prev = int64(v)
	}
	payload, err := huffmanEncode(raw)
	if err != nil {
		return nil, err
	}
	out := appendUvarint(nil, uint64(len(sorted)))
	out = appendUvarint(out, uint64(len(raw)))
	return append(out, payload...), nil
}

// Decode reverses Encode, appending the vertices to dst.
func Decode(data []byte, dst []int32) ([]int32, error) {
	count, n := readUvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("compress: truncated count")
	}
	data = data[n:]
	rawLen, n := readUvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("compress: truncated raw length")
	}
	data = data[n:]
	raw, err := huffmanDecode(data, int(rawLen))
	if err != nil {
		return nil, err
	}
	prev := int64(-1)
	for i := uint64(0); i < count; i++ {
		delta, n := readUvarint(raw)
		if n <= 0 {
			return nil, fmt.Errorf("compress: truncated delta %d", i)
		}
		raw = raw[n:]
		v := prev + 1 + int64(delta)
		dst = append(dst, int32(v))
		prev = v
	}
	return dst, nil
}

// Set is an rrr-compatible compressed RRR set. Membership tests decode
// the whole payload — the deliberate HBMax trade-off.
type Set struct {
	data  []byte
	count int
}

// NewSet compresses the given vertex list (copied, sorted, deduped).
func NewSet(vertices []int32) (*Set, error) {
	vs := append([]int32(nil), vertices...)
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || v != vs[i-1] {
			out = append(out, v)
		}
	}
	data, err := Encode(out)
	if err != nil {
		return nil, err
	}
	return &Set{data: data, count: len(out)}, nil
}

// Contains reports membership by decoding the set.
func (s *Set) Contains(v int32) bool {
	verts, err := Decode(s.data, nil)
	if err != nil {
		return false
	}
	i := sort.Search(len(verts), func(i int) bool { return verts[i] >= v })
	return i < len(verts) && verts[i] == v
}

// Size returns the member count without decoding.
func (s *Set) Size() int { return s.count }

// ForEach decodes and visits members in ascending order.
func (s *Set) ForEach(fn func(v int32)) {
	verts, err := Decode(s.data, nil)
	if err != nil {
		return
	}
	for _, v := range verts {
		fn(v)
	}
}

// Vertices appends the decoded members to dst.
func (s *Set) Vertices(dst []int32) []int32 {
	out, err := Decode(s.data, dst)
	if err != nil {
		return dst
	}
	return out
}

// Bytes returns the compressed footprint.
func (s *Set) Bytes() int64 { return int64(len(s.data)) }

// Kind names the representation.
func (s *Set) Kind() string { return "huffman" }

func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func readUvarint(data []byte) (uint64, int) {
	var v uint64
	var shift uint
	for i, b := range data {
		if b < 0x80 {
			if i > 9 || (i == 9 && b > 1) {
				return 0, -1 // overflow
			}
			return v | uint64(b)<<shift, i + 1
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, 0
}
