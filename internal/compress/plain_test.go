package compress

import (
	"sort"
	"testing"

	"repro/internal/rng"
)

func plainRoundTrip(t *testing.T, verts []int32) {
	t.Helper()
	data := AppendPlain(nil, verts)
	got, err := DecodePlain(data, nil)
	if err != nil {
		t.Fatalf("DecodePlain(%v): %v", verts, err)
	}
	if len(got) != len(verts) {
		t.Fatalf("round trip length %d != %d", len(got), len(verts))
	}
	for i := range verts {
		if got[i] != verts[i] {
			t.Fatalf("round trip mismatch at %d: %d != %d", i, got[i], verts[i])
		}
	}
	if c, err := PlainCount(data); err != nil || c != len(verts) {
		t.Fatalf("PlainCount = %d, %v; want %d", c, err, len(verts))
	}
}

func TestPlainRoundTrip(t *testing.T) {
	plainRoundTrip(t, nil)
	plainRoundTrip(t, []int32{0})
	plainRoundTrip(t, []int32{0, 1, 2, 3})
	plainRoundTrip(t, []int32{7})
	plainRoundTrip(t, []int32{0, 1<<30 + 17})
	plainRoundTrip(t, []int32{5, 1000, 1001, 1 << 20})
}

func TestPlainRoundTripRandom(t *testing.T) {
	r := rng.NewStream(99, 0)
	for trial := 0; trial < 50; trial++ {
		n := int(r.Uint64()%2000) + 1
		seen := map[int32]bool{}
		var verts []int32
		for len(verts) < n {
			v := int32(r.Uint64() % (1 << 22))
			if !seen[v] {
				seen[v] = true
				verts = append(verts, v)
			}
		}
		sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })
		plainRoundTrip(t, verts)
	}
}

func TestPlainBeatsSliceOnClusteredIDs(t *testing.T) {
	// Consecutive-ish ids (the common RRR shape after BFS over a
	// community): one byte per member, 4x below the slice cost.
	verts := make([]int32, 4000)
	for i := range verts {
		verts[i] = int32(i * 3)
	}
	data := AppendPlain(nil, verts)
	if int64(len(data))*2 >= int64(len(verts))*4 {
		t.Fatalf("plain encoding %dB not at least 2x below slice %dB", len(data), len(verts)*4)
	}
}

func TestPlainContains(t *testing.T) {
	verts := []int32{2, 7, 9, 500, 501}
	data := AppendPlain(nil, verts)
	for _, v := range verts {
		if !PlainContains(data, v) {
			t.Fatalf("missing member %d", v)
		}
	}
	for _, v := range []int32{0, 3, 8, 499, 502, 1 << 20} {
		if PlainContains(data, v) {
			t.Fatalf("phantom member %d", v)
		}
	}
}

func TestPlainTruncation(t *testing.T) {
	data := AppendPlain(nil, []int32{3, 900, 40000})
	if _, err := DecodePlain(nil, nil); err == nil {
		t.Fatal("empty input accepted")
	}
	for cut := 1; cut < len(data); cut++ {
		if _, err := DecodePlain(data[:cut], nil); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestForEachPlainMatchesDecode(t *testing.T) {
	verts := []int32{1, 4, 6, 10000}
	data := AppendPlain(nil, verts)
	var walked []int32
	if err := ForEachPlain(data, func(v int32) { walked = append(walked, v) }); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodePlain(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(walked) != len(decoded) {
		t.Fatalf("walked %v != decoded %v", walked, decoded)
	}
	for i := range walked {
		if walked[i] != decoded[i] {
			t.Fatalf("walked %v != decoded %v", walked, decoded)
		}
	}
}
