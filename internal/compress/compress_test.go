package compress

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func roundTrip(t *testing.T, verts []int32) {
	t.Helper()
	data, err := Encode(verts)
	if err != nil {
		t.Fatalf("Encode(%v): %v", verts, err)
	}
	got, err := Decode(data, nil)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got) != len(verts) {
		t.Fatalf("round trip length %d != %d", len(got), len(verts))
	}
	for i := range verts {
		if got[i] != verts[i] {
			t.Fatalf("round trip mismatch at %d: %d != %d", i, got[i], verts[i])
		}
	}
}

func TestRoundTripBasic(t *testing.T) {
	cases := [][]int32{
		{},
		{0},
		{5},
		{0, 1, 2, 3},
		{0, 100, 10000, 1 << 30},
		{7, 8, 9, 1000000, 1000001},
	}
	for _, c := range cases {
		roundTrip(t, c)
	}
}

func TestRoundTripDenseRange(t *testing.T) {
	verts := make([]int32, 5000)
	for i := range verts {
		verts[i] = int32(i * 3)
	}
	roundTrip(t, verts)
}

func TestRoundTripRandomProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		seen := map[int32]bool{}
		var verts []int32
		for _, r := range raw {
			v := int32(r)
			if !seen[v] {
				seen[v] = true
				verts = append(verts, v)
			}
		}
		sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })
		data, err := Encode(verts)
		if err != nil {
			return false
		}
		got, err := Decode(data, nil)
		if err != nil {
			return false
		}
		if len(got) != len(verts) {
			return false
		}
		for i := range verts {
			if got[i] != verts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRejectsUnsorted(t *testing.T) {
	if _, err := Encode([]int32{3, 1}); err == nil {
		t.Fatal("unsorted input accepted")
	}
	if _, err := Encode([]int32{3, 3}); err == nil {
		t.Fatal("duplicate input accepted")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{{}, {0xff}, {5, 10, 1, 2, 3}} {
		if _, err := Decode(data, nil); err == nil {
			t.Fatalf("garbage %v accepted", data)
		}
	}
}

func TestCompressionBeatsRawOnClusteredSets(t *testing.T) {
	// Dense clustered runs (the SCC-driven RRR shape) must compress well
	// below 4 bytes/vertex.
	verts := make([]int32, 0, 20000)
	v := int32(0)
	r := rng.New(3)
	for len(verts) < 20000 {
		v += int32(r.Intn(3) + 1) // deltas 1..3
		verts = append(verts, v)
	}
	ratio, err := CompressionRatio(verts)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 2 {
		t.Fatalf("compression ratio %.2f, want >= 2 on clustered deltas", ratio)
	}
}

func TestSetBehavesLikeRRRSet(t *testing.T) {
	// Interface compliance with rrr.Set is asserted from the rrr side
	// (which imports this package for its compressed representation);
	// here we pin the behavioural contract.
	s, err := NewSet([]int32{9, 2, 7, 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 3 {
		t.Fatalf("Size = %d", s.Size())
	}
	if !s.Contains(7) || s.Contains(5) {
		t.Fatal("membership wrong")
	}
	var got []int32
	s.ForEach(func(v int32) { got = append(got, v) })
	if len(got) != 3 || got[0] != 2 || got[1] != 7 || got[2] != 9 {
		t.Fatalf("ForEach = %v", got)
	}
	if s.Kind() != "huffman" {
		t.Fatal("Kind wrong")
	}
	if s.Bytes() <= 0 {
		t.Fatal("Bytes not positive")
	}
	vs := s.Vertices([]int32{1})
	if len(vs) != 4 || vs[0] != 1 {
		t.Fatalf("Vertices = %v", vs)
	}
}

func TestSetFootprintBelowListAndBitmap(t *testing.T) {
	// The HBMax trade: a dense set compressed below both alternatives.
	const n = 1 << 16
	verts := make([]int32, 0, n/2)
	for v := int32(0); v < n; v += 2 {
		verts = append(verts, v)
	}
	cs, err := NewSet(verts)
	if err != nil {
		t.Fatal(err)
	}
	listBytes := int64(len(verts)) * 4      // 4 bytes per member
	bitmapBytes := int64((n + 63) / 64 * 8) // one bit per vertex
	if cs.Bytes() >= listBytes {
		t.Fatalf("compressed %d not below list %d", cs.Bytes(), listBytes)
	}
	if cs.Bytes() >= bitmapBytes {
		t.Fatalf("compressed %d not below bitmap %d", cs.Bytes(), bitmapBytes)
	}
}

func TestHuffmanSingleSymbol(t *testing.T) {
	raw := make([]byte, 1000) // all zeros: single-symbol alphabet
	data, err := huffmanEncode(raw)
	if err != nil {
		t.Fatal(err)
	}
	got, err := huffmanDecode(data, len(raw))
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d = %d", i, b)
		}
	}
	// 1000 identical bytes must pack to ~1 bit each plus header.
	if len(data) > maxSymbols+150 {
		t.Fatalf("single-symbol payload not compressed: %d bytes", len(data))
	}
}

func TestHuffmanAllSymbols(t *testing.T) {
	raw := make([]byte, 0, 256*4)
	for round := 0; round < 4; round++ {
		for s := 0; s < 256; s++ {
			raw = append(raw, byte(s))
		}
	}
	data, err := huffmanEncode(raw)
	if err != nil {
		t.Fatal(err)
	}
	got, err := huffmanDecode(data, len(raw))
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		if got[i] != raw[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestHuffmanDeterministic(t *testing.T) {
	raw := []byte("the quick brown fox jumps over the lazy dog")
	a, err := huffmanEncode(raw)
	if err != nil {
		t.Fatal(err)
	}
	b, err := huffmanEncode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("encode not deterministic")
	}
}

func BenchmarkEncode(b *testing.B) {
	verts := make([]int32, 10000)
	r := rng.New(1)
	v := int32(0)
	for i := range verts {
		v += int32(r.Intn(5) + 1)
		verts[i] = v
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(verts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	verts := make([]int32, 10000)
	r := rng.New(1)
	v := int32(0)
	for i := range verts {
		v += int32(r.Intn(5) + 1)
		verts[i] = v
	}
	data, err := Encode(verts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var buf []int32
	for i := 0; i < b.N; i++ {
		buf, _ = Decode(data, buf[:0])
	}
}

// BenchmarkMembershipTradeoff quantifies the codec-overhead argument the
// paper makes against compressed sketches: Contains on a compressed set
// versus a sorted list.
func BenchmarkMembershipTradeoff(b *testing.B) {
	verts := make([]int32, 5000)
	for i := range verts {
		verts[i] = int32(i * 7)
	}
	cs, err := NewSet(verts)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("huffman", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cs.Contains(int32(i % 35000))
		}
	})
	b.Run("list", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v := int32(i % 35000)
			j := sort.Search(len(verts), func(j int) bool { return verts[j] >= v })
			_ = j < len(verts) && verts[j] == v
		}
	})
}
