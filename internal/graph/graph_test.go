package graph

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// triangle builds the directed 3-cycle 0→1→2→0 plus chord 0→2.
func triangle(t *testing.T, model Model) *Graph {
	t.Helper()
	g, err := FromEdges(3, []Edge{{0, 1}, {1, 2}, {2, 0}, {0, 2}}, model, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildBasicTopology(t *testing.T) {
	g := triangle(t, IC)
	if g.N != 3 || g.M != 4 {
		t.Fatalf("N=%d M=%d", g.N, g.M)
	}
	if got := g.OutNeighbors(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("out(0) = %v", got)
	}
	if got := g.InNeighbors(2); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("in(2) = %v", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildDedupAndSelfLoops(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 1}, {0, 1}, {1, 1}, {1, 2}}, IC, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.M != 2 {
		t.Fatalf("M = %d, want 2 after dedup and self-loop removal", g.M)
	}
}

func TestHasEdge(t *testing.T) {
	g := triangle(t, IC)
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 2) || !g.HasEdge(2, 0) {
		t.Fatal("missing expected edges")
	}
	if g.HasEdge(1, 0) || g.HasEdge(2, 1) {
		t.Fatal("phantom edges")
	}
}

func TestDegrees(t *testing.T) {
	g := triangle(t, IC)
	if g.OutDegree(0) != 2 || g.InDegree(0) != 1 {
		t.Fatalf("degree(0) out=%d in=%d", g.OutDegree(0), g.InDegree(0))
	}
	st := g.Degrees()
	if st.MaxOut != 2 || st.MeanOut <= 1 || st.Zeros != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDegreesZeroVertex(t *testing.T) {
	g, err := FromEdges(4, []Edge{{0, 1}}, IC, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := g.Degrees()
	if st.Zeros != 2 {
		t.Fatalf("Zeros = %d, want 2", st.Zeros)
	}
}

func TestICProbMirrored(t *testing.T) {
	g := triangle(t, IC)
	// For every in-edge (u→v) the forward copy must carry the same prob.
	for v := int32(0); v < g.N; v++ {
		for k := g.InIndex[v]; k < g.InIndex[v+1]; k++ {
			u := g.InEdges[k]
			seg := g.OutNeighbors(u)
			base := g.OutIndex[u]
			found := false
			for i, w := range seg {
				if w == v {
					if g.OutProb[base+int64(i)] != g.InProb[k] {
						t.Fatalf("edge (%d,%d) prob mismatch", u, v)
					}
					found = true
				}
			}
			if !found {
				t.Fatalf("in-edge (%d,%d) has no forward copy", u, v)
			}
		}
	}
}

func TestLTWeightsSumAtMostOne(t *testing.T) {
	g := triangle(t, LT)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < g.N; v++ {
		var sum float32
		for k := g.InIndex[v]; k < g.InIndex[v+1]; k++ {
			if g.InProb[k] < 0 {
				t.Fatalf("negative LT weight at vertex %d", v)
			}
			sum += g.InProb[k]
		}
		if sum > 1.0001 {
			t.Fatalf("vertex %d in-weights sum to %f", v, sum)
		}
	}
}

func TestLTAccumMonotone(t *testing.T) {
	b := NewBuilder(50)
	r := rng.New(3)
	for i := 0; i < 300; i++ {
		b.AddEdge(int32(r.Intn(50)), int32(r.Intn(50)))
	}
	g, err := b.Build(LT, 7)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < g.N; v++ {
		var prev float32
		for k := g.InIndex[v]; k < g.InIndex[v+1]; k++ {
			if g.InAccum[k] < prev {
				t.Fatalf("InAccum not monotone at vertex %d", v)
			}
			prev = g.InAccum[k]
		}
	}
}

func TestWCAssignsInverseDegree(t *testing.T) {
	g := triangle(t, IC)
	AssignWC(g)
	// Vertex 2 has in-degree 2, so both incoming probs must be 0.5.
	for k := g.InIndex[2]; k < g.InIndex[2+1]; k++ {
		if g.InProb[k] != 0.5 {
			t.Fatalf("WC prob = %v, want 0.5", g.InProb[k])
		}
	}
}

func TestRandomGraphCSRInvariantsProperty(t *testing.T) {
	f := func(seed uint64, rawN uint8, rawM uint16) bool {
		n := int32(rawN%100) + 2
		m := int(rawM % 1000)
		r := rng.New(seed)
		b := NewBuilder(n)
		for i := 0; i < m; i++ {
			b.AddEdge(int32(r.Intn(int(n))), int32(r.Intn(int(n))))
		}
		g, err := b.Build(IC, seed)
		if err != nil {
			return false
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeIsInvolution(t *testing.T) {
	// Every forward edge must appear exactly once in the transpose and
	// vice versa.
	r := rng.New(11)
	b := NewBuilder(64)
	for i := 0; i < 500; i++ {
		b.AddEdge(int32(r.Intn(64)), int32(r.Intn(64)))
	}
	g, err := b.Build(IC, 5)
	if err != nil {
		t.Fatal(err)
	}
	type pair struct{ u, v int32 }
	fwd := map[pair]int{}
	for u := int32(0); u < g.N; u++ {
		for _, v := range g.OutNeighbors(u) {
			fwd[pair{u, v}]++
		}
	}
	for v := int32(0); v < g.N; v++ {
		for _, u := range g.InNeighbors(v) {
			fwd[pair{u, v}]--
		}
	}
	for p, c := range fwd {
		if c != 0 {
			t.Fatalf("edge %v imbalance %d between CSR directions", p, c)
		}
	}
}

func TestLoadEdgeList(t *testing.T) {
	src := `# comment line
0 1
1 2
2 0
# another comment
5 0
`
	g, err := LoadEdgeList(strings.NewReader(src), false, IC, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 4 || g.M != 4 {
		t.Fatalf("N=%d M=%d, want 4 and 4", g.N, g.M)
	}
}

func TestLoadEdgeListUndirected(t *testing.T) {
	g, err := LoadEdgeList(strings.NewReader("0 1\n1 2\n"), true, IC, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.M != 4 {
		t.Fatalf("M = %d, want 4 (both directions)", g.M)
	}
	if !g.HasEdge(1, 0) || !g.HasEdge(2, 1) {
		t.Fatal("reverse edges missing")
	}
}

func TestLoadEdgeListErrors(t *testing.T) {
	cases := []string{"0\n", "a b\n", "0 b\n", "-1 2\n"}
	for _, c := range cases {
		if _, err := LoadEdgeList(strings.NewReader(c), false, IC, 1); err == nil {
			t.Errorf("input %q: expected error", c)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := triangle(t, IC)
	var sb strings.Builder
	if err := WriteEdgeList(&sb, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadEdgeList(strings.NewReader(sb.String()), false, IC, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N != g.N || g2.M != g.M {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d", g2.N, g2.M, g.N, g.M)
	}
	for u := int32(0); u < g.N; u++ {
		a, b := g.OutNeighbors(u), g2.OutNeighbors(u)
		if len(a) != len(b) {
			t.Fatalf("degree mismatch at %d", u)
		}
	}
}

func TestSCCThreeCycle(t *testing.T) {
	g := triangle(t, IC)
	_, count := g.SCC()
	if count != 1 {
		t.Fatalf("triangle SCC count = %d, want 1", count)
	}
	if f := g.LargestSCCFraction(); f != 1 {
		t.Fatalf("LargestSCCFraction = %v, want 1", f)
	}
}

func TestSCCChain(t *testing.T) {
	// 0→1→2 is a DAG: three singleton components.
	g, err := FromEdges(3, []Edge{{0, 1}, {1, 2}}, IC, 1)
	if err != nil {
		t.Fatal(err)
	}
	comp, count := g.SCC()
	if count != 3 {
		t.Fatalf("chain SCC count = %d, want 3", count)
	}
	if comp[0] == comp[1] || comp[1] == comp[2] {
		t.Fatal("DAG vertices merged into one SCC")
	}
}

func TestSCCTwoCyclesBridged(t *testing.T) {
	// cycle {0,1}, cycle {2,3}, bridge 1→2.
	g, err := FromEdges(4, []Edge{{0, 1}, {1, 0}, {2, 3}, {3, 2}, {1, 2}}, IC, 1)
	if err != nil {
		t.Fatal(err)
	}
	comp, count := g.SCC()
	if count != 2 {
		t.Fatalf("SCC count = %d, want 2", count)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[0] == comp[2] {
		t.Fatalf("components wrong: %v", comp)
	}
}

func TestSCCMatchesBruteForceOnRandomGraphs(t *testing.T) {
	// Brute force: u,v in same SCC iff reach(u,v) && reach(v,u).
	reach := func(g *Graph, from int32) []bool {
		seen := make([]bool, g.N)
		stack := []int32{from}
		seen[from] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range g.OutNeighbors(u) {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		return seen
	}
	r := rng.New(99)
	for trial := 0; trial < 20; trial++ {
		n := int32(r.Intn(20) + 2)
		b := NewBuilder(n)
		for i := 0; i < int(n)*2; i++ {
			b.AddEdge(int32(r.Intn(int(n))), int32(r.Intn(int(n))))
		}
		g, err := b.Build(IC, uint64(trial))
		if err != nil {
			t.Fatal(err)
		}
		comp, _ := g.SCC()
		reachAll := make([][]bool, n)
		for v := int32(0); v < n; v++ {
			reachAll[v] = reach(g, v)
		}
		for u := int32(0); u < n; u++ {
			for v := int32(0); v < n; v++ {
				same := comp[u] == comp[v]
				mutual := reachAll[u][v] && reachAll[v][u]
				if same != mutual {
					t.Fatalf("trial %d: SCC disagrees with brute force for %d,%d", trial, u, v)
				}
			}
		}
	}
}

func TestWCC(t *testing.T) {
	g, err := FromEdges(5, []Edge{{0, 1}, {2, 3}}, IC, 1)
	if err != nil {
		t.Fatal(err)
	}
	comp, count := g.WCC()
	if count != 3 {
		t.Fatalf("WCC count = %d, want 3", count)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[4] == comp[0] || comp[4] == comp[2] {
		t.Fatalf("WCC ids wrong: %v", comp)
	}
}

func TestMemoryFootprint(t *testing.T) {
	g := triangle(t, IC)
	want := int64(2*4*8) + int64(2*4*4) + int64(2*4*4) // indexes + edges + probs
	if got := g.MemoryFootprintBytes(); got != want {
		t.Fatalf("footprint = %d, want %d", got, want)
	}
}

func TestParseModel(t *testing.T) {
	if m, err := ParseModel("IC"); err != nil || m != IC {
		t.Fatal("ParseModel(IC) failed")
	}
	if m, err := ParseModel("lt"); err != nil || m != LT {
		t.Fatal("ParseModel(lt) failed")
	}
	if _, err := ParseModel("bogus"); err == nil {
		t.Fatal("ParseModel(bogus) should fail")
	}
	if IC.String() != "IC" || LT.String() != "LT" {
		t.Fatal("String() wrong")
	}
}

func TestTranspose(t *testing.T) {
	g := triangle(t, IC)
	tr, err := g.Transpose()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every edge must be reversed with its probability intact.
	for u := int32(0); u < g.N; u++ {
		base := g.OutIndex[u]
		for i, v := range g.OutNeighbors(u) {
			if !tr.HasEdge(v, u) {
				t.Fatalf("edge (%d,%d) not reversed", u, v)
			}
			p := g.OutProb[base+int64(i)]
			trBase := tr.InIndex[u]
			found := false
			for j, w := range tr.InNeighbors(u) {
				if w == v && tr.InProb[trBase+int64(j)] == p {
					found = true
				}
			}
			if !found {
				t.Fatalf("probability of (%d,%d) lost in transpose", u, v)
			}
		}
	}
	// Transposing twice restores the original adjacency.
	tr2, err := tr.Transpose()
	if err != nil {
		t.Fatal(err)
	}
	for u := int32(0); u < g.N; u++ {
		a, b := g.OutNeighbors(u), tr2.OutNeighbors(u)
		if len(a) != len(b) {
			t.Fatalf("double transpose changed degree of %d", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("double transpose changed adjacency")
			}
		}
	}
}

func TestTransposeRejectsLT(t *testing.T) {
	g := triangle(t, LT)
	if _, err := g.Transpose(); err == nil {
		t.Fatal("LT transpose accepted")
	}
}

func TestBuilderPanicsOnBadEdge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge out of range did not panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 5)
}
