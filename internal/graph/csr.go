package graph

import "fmt"

// FromCSRTopology assembles a Graph directly from prebuilt CSR arrays,
// without diffusion parameters. It is the seam the parallel ingestion
// pipeline (internal/ingest) uses: the pipeline lays out the arrays
// itself and then attaches model parameters through AssignIC/AssignLT,
// exactly like Builder.Build does. The arrays are adopted, not copied;
// callers must not retain them. Invariants (monotone indices, strictly
// sorted segments, in-range targets) are validated.
func FromCSRTopology(n int32, m int64, outIndex []int64, outEdges []int32, inIndex []int64, inEdges []int32) (*Graph, error) {
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("graph: negative shape n=%d m=%d", n, m)
	}
	g := &Graph{
		N:        n,
		M:        m,
		OutIndex: outIndex,
		OutEdges: outEdges,
		InIndex:  inIndex,
		InEdges:  inEdges,
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// FromCSR assembles a complete Graph — topology plus per-edge diffusion
// parameters — from prebuilt arrays. It is the constructor the snapshot
// reader uses: the stored weights are adopted verbatim instead of being
// re-drawn, which is what makes a snapshot reload reproduce the exact
// graph (and therefore the exact seeds) of the original ingestion. For
// IC, inAccum must be empty; for LT it must hold the per-segment prefix
// sums of inProb. All invariants are validated before the graph is
// returned.
func FromCSR(model Model, n int32, m int64, outIndex []int64, outEdges []int32, outProb []float32, inIndex []int64, inEdges []int32, inProb []float32, inAccum []float32) (*Graph, error) {
	if model != IC && model != LT {
		return nil, fmt.Errorf("graph: unknown model %v", model)
	}
	if int64(len(outProb)) != m || int64(len(inProb)) != m {
		return nil, fmt.Errorf("graph: probability arrays must have length M=%d (got out=%d in=%d)", m, len(outProb), len(inProb))
	}
	switch model {
	case IC:
		if len(inAccum) != 0 {
			return nil, fmt.Errorf("graph: IC graph must not carry InAccum")
		}
		inAccum = nil
	case LT:
		if int64(len(inAccum)) != m {
			return nil, fmt.Errorf("graph: LT graph needs InAccum of length M=%d, got %d", m, len(inAccum))
		}
	}
	g, err := FromCSRTopology(n, m, outIndex, outEdges, inIndex, inEdges)
	if err != nil {
		return nil, err
	}
	g.OutProb = outProb
	g.InProb = inProb
	g.InAccum = inAccum
	g.model = model
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Equal reports whether two graphs are byte-identical: same model, same
// CSR arrays, same per-edge parameters. This is the property the
// ingestion tests pin across worker counts and snapshot round trips —
// not isomorphism, exact array equality.
func Equal(a, b *Graph) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.N != b.N || a.M != b.M || a.model != b.model {
		return false
	}
	return eqI64(a.OutIndex, b.OutIndex) && eqI32(a.OutEdges, b.OutEdges) && eqF32(a.OutProb, b.OutProb) &&
		eqI64(a.InIndex, b.InIndex) && eqI32(a.InEdges, b.InEdges) && eqF32(a.InProb, b.InProb) &&
		eqF32(a.InAccum, b.InAccum)
}

func eqI64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func eqI32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func eqF32(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		// Bit-identity, not numeric closeness: snapshots store the exact
		// float32 payload.
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
