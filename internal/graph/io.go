package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// LoadEdgeList reads a SNAP-style whitespace-separated edge list from r:
// one "src dst" pair per line, '#' lines are comments, vertex ids are
// arbitrary non-negative integers and are densified to [0, N). When
// undirected is set every edge is added in both directions, matching how
// the paper handles the undirected com-* SNAP graphs.
func LoadEdgeList(r io.Reader, undirected bool, model Model, seed uint64) (*Graph, error) {
	type rawEdge struct{ src, dst int64 }
	var raw []rawEdge
	maxID := int64(-1)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want at least 2 fields, got %q", lineNo, line)
		}
		src, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source id: %v", lineNo, err)
		}
		dst, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target id: %v", lineNo, err)
		}
		if src < 0 || dst < 0 {
			return nil, fmt.Errorf("graph: line %d: negative vertex id", lineNo)
		}
		raw = append(raw, rawEdge{src, dst})
		if src > maxID {
			maxID = src
		}
		if dst > maxID {
			maxID = dst
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}

	// Densify ids: SNAP files frequently have sparse id spaces.
	remap := make(map[int64]int32, len(raw))
	next := int32(0)
	for _, e := range raw {
		if _, ok := remap[e.src]; !ok {
			remap[e.src] = next
			next++
		}
		if _, ok := remap[e.dst]; !ok {
			remap[e.dst] = next
			next++
		}
	}
	b := NewBuilder(next)
	for _, e := range raw {
		s, d := remap[e.src], remap[e.dst]
		if undirected {
			b.AddUndirected(s, d)
		} else {
			b.AddEdge(s, d)
		}
	}
	g, err := b.Build(model, seed)
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// LoadEdgeListFile opens path and delegates to LoadEdgeList.
func LoadEdgeListFile(path string, undirected bool, model Model, seed uint64) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadEdgeList(f, undirected, model, seed)
}

// WriteEdgeList writes the forward edges of g as a SNAP-style edge list
// with a descriptive header comment.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# Directed graph: %d nodes, %d edges\n# src\tdst\n", g.N, g.M); err != nil {
		return err
	}
	for u := int32(0); u < g.N; u++ {
		for _, v := range g.OutNeighbors(u) {
			if _, err := fmt.Fprintf(bw, "%d\t%d\n", u, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteEdgeListFile creates path and delegates to WriteEdgeList.
func WriteEdgeListFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeList(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
