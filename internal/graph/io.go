package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
)

// MaxLineLen is the longest accepted edge-list line: 1 MiB, the scanner
// buffer this loader has always used. The parallel pipeline in
// internal/ingest enforces the same cap so both paths agree on which
// inputs are valid.
const MaxLineLen = 1 << 20

// Edge-list policy (shared by this sequential loader and the parallel
// pipeline in internal/ingest, which calls ParseEdgeLine):
//
//   - '#' and '%' lines are comments; blank lines are skipped. The '%'
//     form covers MatrixMarket-style "%%MatrixMarket" banners.
//   - A data line must hold EXACTLY two non-negative integers. Lines
//     with three or more fields are rejected rather than misparsed —
//     in particular the "rows cols nnz" size line that follows a
//     MatrixMarket banner is an error, not the edge (rows, cols).
//   - Vertex ids are arbitrary non-negative int64s, densified to
//     [0, N) by ascending raw id (sort-based ranking). The ranking
//     depends only on the set of ids, never on the order lines are
//     read, which is what keeps parallel ingestion worker-count
//     invariant.
//   - Self-loops and duplicate edges are accepted in the input and
//     silently dropped during CSR construction, matching Builder (the
//     preprocessing applied to the paper's SNAP datasets). Callers who
//     need to detect them instead of dropping them use
//     ingest.Options.Dedupe = ingest.DedupeStrict.

// ParseEdgeLine parses one edge-list line under the policy above.
// skip reports comment/blank lines; src/dst are only meaningful when
// skip is false and err is nil. The returned error describes the first
// offending field but carries no line number — callers prepend their
// own position information.
func ParseEdgeLine(line []byte) (src, dst int64, skip bool, err error) {
	i := 0
	for i < len(line) && isSpace(line[i]) {
		i++
	}
	if i == len(line) || line[i] == '#' || line[i] == '%' {
		return 0, 0, true, nil
	}
	src, i, err = parseID(line, i, "source")
	if err != nil {
		return 0, 0, false, err
	}
	if i == len(line) || !isSpace(line[i]) {
		return 0, 0, false, fmt.Errorf("want exactly 2 fields, got %q", string(line))
	}
	for i < len(line) && isSpace(line[i]) {
		i++
	}
	dst, i, err = parseID(line, i, "target")
	if err != nil {
		return 0, 0, false, err
	}
	for i < len(line) && isSpace(line[i]) {
		i++
	}
	if i != len(line) {
		return 0, 0, false, fmt.Errorf("want exactly 2 fields, got %q (MatrixMarket size headers are not edges)", string(line))
	}
	if src < 0 || dst < 0 {
		return 0, 0, false, fmt.Errorf("negative vertex id in %q", string(line))
	}
	return src, dst, false, nil
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f' }

// parseID parses a non-negative decimal field starting at line[i]. A
// leading '-' is parsed (so the caller can report "negative vertex id"
// rather than a generic syntax error) but any other non-digit fails.
func parseID(line []byte, i int, role string) (int64, int, error) {
	if i >= len(line) {
		return 0, i, fmt.Errorf("want exactly 2 fields, got %q", string(line))
	}
	neg := false
	if line[i] == '-' || line[i] == '+' {
		neg = line[i] == '-'
		i++
	}
	start := i
	var v int64
	for i < len(line) && line[i] >= '0' && line[i] <= '9' {
		d := int64(line[i] - '0')
		if v > (1<<63-1-d)/10 {
			return 0, i, fmt.Errorf("bad %s id: %q overflows int64", role, string(line))
		}
		v = v*10 + d
		i++
	}
	if i == start || (i < len(line) && !isSpace(line[i])) {
		return 0, i, fmt.Errorf("bad %s id in %q", role, string(line))
	}
	if neg {
		v = -v
	}
	return v, i, nil
}

// DensifyIDs ranks the raw ids appearing in edges: the returned slice
// is sorted and duplicate-free, so an id's dense vertex number is its
// RankID index. Sort-based ranking makes the mapping a pure function
// of the id set — the property that lets the parallel pipeline in
// internal/ingest densify chunks independently and still produce
// identical graphs at every worker count.
func DensifyIDs(ids []int64) []int64 {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:0]
	for i, v := range ids {
		if i == 0 || v != ids[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// RankID returns id's dense vertex number under a DensifyIDs ranking.
// It is the single definition of the densification mapping — the
// sequential loader and the parallel pipeline both call it, so the
// byte-identity pin between them cannot drift.
func RankID(ids []int64, id int64) int32 {
	return int32(sort.Search(len(ids), func(i int) bool { return ids[i] >= id }))
}

// LoadEdgeList reads a SNAP-style whitespace-separated edge list from r:
// one "src dst" pair per line under the policy documented above. When
// undirected is set every edge is added in both directions, matching how
// the paper handles the undirected com-* SNAP graphs.
//
// This is the sequential reference loader. internal/ingest implements
// the same semantics as a chunked parallel pipeline and is pinned
// byte-identical to this function at every worker count; the public
// efficientimm.LoadEdgeList delegates there. Lines longer than
// MaxLineLen fail (the scanner buffer is capped).
func LoadEdgeList(r io.Reader, undirected bool, model Model, seed uint64) (*Graph, error) {
	type rawEdge struct{ src, dst int64 }
	var raw []rawEdge
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), MaxLineLen)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		src, dst, skip, err := ParseEdgeLine(sc.Bytes())
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		if skip {
			continue
		}
		raw = append(raw, rawEdge{src, dst})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}

	// Densify ids by ascending raw id: SNAP files frequently have sparse
	// id spaces, and rank densification keeps the mapping independent of
	// line order (see DensifyIDs).
	ids := make([]int64, 0, 2*len(raw))
	for _, e := range raw {
		ids = append(ids, e.src, e.dst)
	}
	ids = DensifyIDs(ids)
	if int64(len(ids)) > int64(1)<<31-1 {
		return nil, fmt.Errorf("graph: %d distinct vertex ids exceed int32 range", len(ids))
	}
	b := NewBuilder(int32(len(ids)))
	for _, e := range raw {
		s, d := RankID(ids, e.src), RankID(ids, e.dst)
		if undirected {
			b.AddUndirected(s, d)
		} else {
			b.AddEdge(s, d)
		}
	}
	g, err := b.Build(model, seed)
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// LoadEdgeListFile opens path and delegates to LoadEdgeList.
func LoadEdgeListFile(path string, undirected bool, model Model, seed uint64) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadEdgeList(f, undirected, model, seed)
}

// WriteEdgeList writes the forward edges of g as a SNAP-style edge list
// with a descriptive header comment.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# Directed graph: %d nodes, %d edges\n# src\tdst\n", g.N, g.M); err != nil {
		return err
	}
	for u := int32(0); u < g.N; u++ {
		for _, v := range g.OutNeighbors(u) {
			if _, err := fmt.Fprintf(bw, "%d\t%d\n", u, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteEdgeListFile creates path and delegates to WriteEdgeList.
func WriteEdgeListFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeList(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
