package graph

import (
	"errors"
	"strings"
	"testing"
)

// Error-path coverage for the sequential loader; the parallel pipeline
// in internal/ingest pins behavioral parity against this loader, so the
// policy is only spelled out once, here.

func TestLoadEdgeListRejectsExtraFields(t *testing.T) {
	// A MatrixMarket size header ("rows cols nnz") must be rejected, not
	// misparsed as the edge (rows, cols).
	cases := []string{
		"%%MatrixMarket matrix coordinate\n10 10 57\n1 2\n",
		"1 2 0.5\n",
		"1 2 3 4\n",
	}
	for _, c := range cases {
		if _, err := LoadEdgeList(strings.NewReader(c), false, IC, 1); err == nil {
			t.Errorf("input %q: 3+ field line not rejected", c)
		}
	}
	// But '%' comment lines themselves are skipped.
	g, err := LoadEdgeList(strings.NewReader("% banner\n0 1\n"), false, IC, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.M != 1 {
		t.Fatalf("M=%d, want 1", g.M)
	}
}

func TestLoadEdgeListOversizedLine(t *testing.T) {
	long := strings.Repeat("7", MaxLineLen+16) + " 1\n"
	if _, err := LoadEdgeList(strings.NewReader(long), false, IC, 1); err == nil {
		t.Fatal("line beyond the scanner buffer not rejected")
	}
	// An oversized comment line fails the same way: the scanner cap is a
	// property of the line, not the payload.
	if _, err := LoadEdgeList(strings.NewReader("#"+long), false, IC, 1); err == nil {
		t.Fatal("oversized comment line not rejected")
	}
}

func TestLoadEdgeListSparseAndNegativeIDs(t *testing.T) {
	// Sparse ids densify by ascending raw id: 5→0, 7→1, 10^9→2.
	g, err := LoadEdgeList(strings.NewReader("1000000000 5\n7 1000000000\n"), false, IC, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.M != 2 {
		t.Fatalf("N=%d M=%d, want 3/2", g.N, g.M)
	}
	if !g.HasEdge(2, 0) || !g.HasEdge(1, 2) {
		t.Fatal("sort-based densification mapped ids wrong")
	}
	for _, bad := range []string{"-1 2\n", "1 -2\n", "- 2\n", "99999999999999999999 1\n"} {
		if _, err := LoadEdgeList(strings.NewReader(bad), false, IC, 1); err == nil {
			t.Errorf("input %q: expected error", bad)
		}
	}
}

func TestLoadEdgeListTruncatedFile(t *testing.T) {
	// A final line without a newline still parses...
	g, err := LoadEdgeList(strings.NewReader("0 1\n1 2"), false, IC, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.M != 2 {
		t.Fatalf("M=%d, want 2 (truncated last line lost)", g.M)
	}
	// ...but a line cut mid-token is a parse error, not a silent skip.
	if _, err := LoadEdgeList(strings.NewReader("0 1\n1"), false, IC, 1); err == nil {
		t.Fatal("half an edge accepted")
	}
	if _, err := LoadEdgeList(errReader{}, false, IC, 1); err == nil {
		t.Fatal("reader failure not surfaced")
	}
}

type errReader struct{}

func (errReader) Read([]byte) (int, error) { return 0, errors.New("disk gone") }

func TestLoadEdgeListDedupePolicy(t *testing.T) {
	// Self-loops and duplicates are silently dropped (the documented
	// Builder-matching policy); internal/ingest offers the strict mode.
	g, err := LoadEdgeList(strings.NewReader("0 1\n0 1\n2 2\n1 0\n"), false, IC, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.M != 2 {
		t.Fatalf("M=%d, want 2 after dedupe", g.M)
	}
}
