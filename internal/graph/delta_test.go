package graph

import (
	"testing"
)

func deltaTestGraph(t *testing.T, model Model) *Graph {
	t.Helper()
	edges := []Edge{
		{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 0}, {3, 4}, {4, 1}, {4, 2},
	}
	g, err := FromEdges(5, edges, model, 7)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestApplyDeltaEmpty(t *testing.T) {
	g := deltaTestGraph(t, IC)
	ng, rep, err := ApplyDelta(g, Delta{}, DeltaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ng != g {
		t.Fatal("empty delta must return the input graph unchanged")
	}
	if rep.Changed() {
		t.Fatalf("empty delta reported a change: %+v", rep)
	}
	if rep.NewM != g.M || rep.NewN != g.N {
		t.Fatalf("empty delta shape drifted: %+v", rep)
	}
}

func TestApplyDeltaAddRemove(t *testing.T) {
	for _, model := range []Model{IC, LT} {
		g := deltaTestGraph(t, model)
		d := Delta{
			Add:    []Edge{{1, 3}, {2, 0}},
			Remove: []Edge{{0, 1}},
			Seed:   42,
		}
		ng, rep, err := ApplyDelta(g, d, DeltaOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if ng.M != g.M+1 {
			t.Fatalf("M = %d, want %d", ng.M, g.M+1)
		}
		if !ng.HasEdge(1, 3) || !ng.HasEdge(2, 0) || ng.HasEdge(0, 1) {
			t.Fatal("post-delta edge membership wrong")
		}
		if err := ng.Validate(); err != nil {
			t.Fatalf("post-delta graph invalid: %v", err)
		}
		// Dirty = dst endpoints of the applied changes.
		want := []int32{0, 1, 3}
		if len(rep.Dirty) != len(want) {
			t.Fatalf("dirty = %v, want %v", rep.Dirty, want)
		}
		for i, v := range want {
			if rep.Dirty[i] != v {
				t.Fatalf("dirty = %v, want %v", rep.Dirty, want)
			}
		}
		// Untouched in-segments carry their weights bit-for-bit.
		for v := int32(0); v < g.N; v++ {
			dirty := false
			for _, dv := range rep.Dirty {
				if dv == v {
					dirty = true
				}
			}
			if dirty {
				continue
			}
			olo, ohi := g.InIndex[v], g.InIndex[v+1]
			nlo, nhi := ng.InIndex[v], ng.InIndex[v+1]
			if ohi-olo != nhi-nlo {
				t.Fatalf("vertex %d segment changed without being dirty", v)
			}
			for i := int64(0); i < ohi-olo; i++ {
				if g.InProb[olo+i] != ng.InProb[nlo+i] {
					t.Fatalf("vertex %d carried-over weight changed", v)
				}
			}
		}
	}
}

func TestApplyDeltaDeterministicWeights(t *testing.T) {
	// The same delta applied twice yields bit-identical graphs, and a
	// reordered delta yields the same graph too (weights depend only on
	// (seed, edge), not on delta order).
	for _, model := range []Model{IC, LT} {
		g := deltaTestGraph(t, model)
		d1 := Delta{Add: []Edge{{1, 3}, {0, 4}}, Remove: []Edge{{2, 3}}, Seed: 9}
		d2 := Delta{Add: []Edge{{0, 4}, {1, 3}}, Remove: []Edge{{2, 3}}, Seed: 9}
		a, _, err := ApplyDelta(g, d1, DeltaOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := ApplyDelta(g, d2, DeltaOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(a, b) {
			t.Fatalf("%v: delta application is order-sensitive", model)
		}
	}
}

func TestApplyDeltaExplicitProb(t *testing.T) {
	g := deltaTestGraph(t, IC)
	d := Delta{Add: []Edge{{1, 3}}, AddProb: []float32{0.25}}
	ng, _, err := ApplyDelta(g, d, DeltaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for k := ng.InIndex[3]; k < ng.InIndex[4]; k++ {
		if ng.InEdges[k] == 1 && ng.InProb[k] != 0.25 {
			t.Fatalf("explicit probability not honored: got %g", ng.InProb[k])
		}
	}
	// An explicit zero is a valid probability, not "derive me".
	d = Delta{Add: []Edge{{1, 3}}, AddProb: []float32{0}}
	ng, _, err = ApplyDelta(g, d, DeltaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for k := ng.InIndex[3]; k < ng.InIndex[4]; k++ {
		if ng.InEdges[k] == 1 {
			found = true
			if ng.InProb[k] != 0 {
				t.Fatalf("explicit zero probability overwritten: got %g", ng.InProb[k])
			}
		}
	}
	if !found {
		t.Fatal("added edge missing")
	}
}

func TestApplyDeltaGrowsVertices(t *testing.T) {
	for _, model := range []Model{IC, LT} {
		g := deltaTestGraph(t, model)
		d := Delta{Add: []Edge{{4, 9}, {9, 0}}, Seed: 3}
		ng, rep, err := ApplyDelta(g, d, DeltaOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if ng.N != 10 {
			t.Fatalf("N = %d, want 10", ng.N)
		}
		if rep.NewN != 10 || rep.OldN != 5 {
			t.Fatalf("report shape %+v", rep)
		}
		if !ng.HasEdge(4, 9) || !ng.HasEdge(9, 0) {
			t.Fatal("grown edges missing")
		}
		if err := ng.Validate(); err != nil {
			t.Fatalf("grown graph invalid: %v", err)
		}
	}
}

func TestApplyDeltaStrict(t *testing.T) {
	g := deltaTestGraph(t, IC)
	strict := DeltaOptions{Strict: true}
	cases := []struct {
		name string
		d    Delta
	}{
		{"self-loop", Delta{Add: []Edge{{2, 2}}}},
		{"duplicate-of-existing", Delta{Add: []Edge{{0, 1}}}},
		{"duplicate-within-delta", Delta{Add: []Edge{{0, 1}, {0, 1}}}},
		{"missing-removal", Delta{Remove: []Edge{{1, 0}}}},
		{"out-of-range-removal", Delta{Remove: []Edge{{40, 0}}}},
	}
	for _, tc := range cases {
		if _, _, err := ApplyDelta(g, tc.d, strict); err == nil {
			t.Fatalf("%s: strict mode accepted bad delta", tc.name)
		}
		// Silent mode drops the same entries and reports them.
		ng, rep, err := ApplyDelta(g, tc.d, DeltaOptions{})
		if err != nil {
			t.Fatalf("%s: silent mode failed: %v", tc.name, err)
		}
		if dropped := rep.DroppedSelfLoops + rep.DroppedDuplicates + rep.MissingRemovals; dropped == 0 {
			t.Fatalf("%s: silent mode dropped nothing", tc.name)
		}
		if rep.Changed() {
			t.Fatalf("%s: silent drop still changed the graph", tc.name)
		}
		if ng != g {
			t.Fatalf("%s: no-op delta built a new graph", tc.name)
		}
	}
	// Negative endpoints are malformed in both modes.
	if _, _, err := ApplyDelta(g, Delta{Add: []Edge{{-1, 2}}}, DeltaOptions{}); err == nil {
		t.Fatal("negative endpoint accepted")
	}
}

func TestApplyDeltaRemoveThenReAdd(t *testing.T) {
	// Removing and re-adding the same edge in one delta is a reweight,
	// not a duplicate — even under strict mode.
	g := deltaTestGraph(t, IC)
	d := Delta{Add: []Edge{{0, 1}}, Remove: []Edge{{0, 1}}, Seed: 5}
	ng, rep, err := ApplyDelta(g, d, DeltaOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ng.HasEdge(0, 1) || ng.M != g.M {
		t.Fatal("reweight delta changed topology")
	}
	if len(rep.Dirty) != 1 || rep.Dirty[0] != 1 {
		t.Fatalf("dirty = %v, want [1]", rep.Dirty)
	}
}
