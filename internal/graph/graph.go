// Package graph implements the directed-graph substrate for influence
// maximization: a compressed sparse row (CSR) representation with both
// forward and transpose adjacency, per-edge diffusion parameters for the
// Independent Cascade and Linear Threshold models, text loaders for
// SNAP-style edge lists, and the structural analyses (degree statistics,
// strongly and weakly connected components) the paper uses to
// characterize its inputs.
//
// Reverse influence sampling traverses incoming edges, so the transpose
// CSR (InIndex/InEdges) is the hot structure; the forward CSR is kept for
// forward Monte-Carlo spread estimation and for graph generation.
package graph

import (
	"fmt"
	"sort"
)

// Model selects the influence diffusion model.
type Model int

const (
	// IC is the Independent Cascade model: each activated vertex u has
	// one chance to activate each out-neighbor v with probability p(u,v).
	IC Model = iota
	// LT is the Linear Threshold model: vertex v activates when the
	// weight of its activated in-neighbors crosses a uniform threshold;
	// incoming weights sum to at most one.
	LT
)

func (m Model) String() string {
	switch m {
	case IC:
		return "IC"
	case LT:
		return "LT"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// ParseModel converts "IC" or "LT" (case sensitive) to a Model.
func ParseModel(s string) (Model, error) {
	switch s {
	case "IC", "ic":
		return IC, nil
	case "LT", "lt":
		return LT, nil
	}
	return 0, fmt.Errorf("graph: unknown diffusion model %q (want IC or LT)", s)
}

// Graph is an immutable directed graph in CSR form. Vertices are dense
// int32 ids in [0, N). Both adjacency directions are materialized:
//
//	out-edges of u: OutEdges[OutIndex[u]:OutIndex[u+1]]
//	in-edges  of v: InEdges[InIndex[v]:InIndex[v+1]]
//
// InProb[k] carries the diffusion parameter of the k'th incoming edge:
// under IC it is the activation probability of edge (u→v); under LT it is
// the edge weight w(u,v) with sum over in-edges of v at most 1. InAccum
// is only populated for LT and holds the inclusive prefix sums of InProb
// within each vertex's in-edge segment, so a single uniform draw selects
// the "live" incoming edge in O(log indeg) — or none, when the draw lands
// beyond the total weight.
type Graph struct {
	N int32 // number of vertices
	M int64 // number of directed edges

	OutIndex []int64 // length N+1
	OutEdges []int32 // length M, sorted within each segment
	OutProb  []float32

	InIndex []int64 // length N+1
	InEdges []int32 // length M, sorted within each segment
	InProb  []float32
	InAccum []float32 // LT only: prefix sums of InProb per segment

	model Model
}

// Model returns the diffusion model the edge parameters were built for.
func (g *Graph) Model() Model { return g.model }

// OutDegree returns the out-degree of u.
func (g *Graph) OutDegree(u int32) int64 { return g.OutIndex[u+1] - g.OutIndex[u] }

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v int32) int64 { return g.InIndex[v+1] - g.InIndex[v] }

// OutNeighbors returns the out-neighbor slice of u (do not modify).
func (g *Graph) OutNeighbors(u int32) []int32 {
	return g.OutEdges[g.OutIndex[u]:g.OutIndex[u+1]]
}

// InNeighbors returns the in-neighbor slice of v (do not modify).
func (g *Graph) InNeighbors(v int32) []int32 {
	return g.InEdges[g.InIndex[v]:g.InIndex[v+1]]
}

// HasEdge reports whether the directed edge (u, v) exists, by binary
// search over u's sorted out-segment.
func (g *Graph) HasEdge(u, v int32) bool {
	seg := g.OutNeighbors(u)
	i := sort.Search(len(seg), func(i int) bool { return seg[i] >= v })
	return i < len(seg) && seg[i] == v
}

// MemoryFootprintBytes returns the exact size of the CSR arrays. The
// harness uses this for the Twitter7 OOM analysis.
func (g *Graph) MemoryFootprintBytes() int64 {
	b := int64(len(g.OutIndex)+len(g.InIndex)) * 8
	b += int64(len(g.OutEdges)+len(g.InEdges)) * 4
	b += int64(len(g.OutProb)+len(g.InProb)+len(g.InAccum)) * 4
	return b
}

// Validate checks the CSR invariants. It is used by tests and by loaders
// before returning a graph to callers.
func (g *Graph) Validate() error {
	if int64(len(g.OutIndex)) != int64(g.N)+1 || int64(len(g.InIndex)) != int64(g.N)+1 {
		return fmt.Errorf("graph: index arrays have wrong length")
	}
	if g.OutIndex[0] != 0 || g.InIndex[0] != 0 {
		return fmt.Errorf("graph: index arrays must start at 0")
	}
	if g.OutIndex[g.N] != g.M || g.InIndex[g.N] != g.M {
		return fmt.Errorf("graph: index arrays must end at M=%d (got out=%d in=%d)", g.M, g.OutIndex[g.N], g.InIndex[g.N])
	}
	if int64(len(g.OutEdges)) != g.M || int64(len(g.InEdges)) != g.M {
		return fmt.Errorf("graph: edge arrays must have length M")
	}
	for u := int32(0); u < g.N; u++ {
		if g.OutIndex[u] > g.OutIndex[u+1] || g.InIndex[u] > g.InIndex[u+1] {
			return fmt.Errorf("graph: index arrays not monotone at %d", u)
		}
		seg := g.OutNeighbors(u)
		for i := 1; i < len(seg); i++ {
			if seg[i-1] >= seg[i] {
				return fmt.Errorf("graph: out-segment of %d not strictly sorted", u)
			}
		}
		iseg := g.InNeighbors(u)
		for i := 1; i < len(iseg); i++ {
			if iseg[i-1] >= iseg[i] {
				return fmt.Errorf("graph: in-segment of %d not strictly sorted", u)
			}
		}
	}
	for _, v := range g.OutEdges {
		if v < 0 || v >= g.N {
			return fmt.Errorf("graph: out-edge target %d out of range", v)
		}
	}
	for _, v := range g.InEdges {
		if v < 0 || v >= g.N {
			return fmt.Errorf("graph: in-edge source %d out of range", v)
		}
	}
	if g.model == LT {
		if int64(len(g.InAccum)) != g.M {
			return fmt.Errorf("graph: LT graph missing InAccum")
		}
		for v := int32(0); v < g.N; v++ {
			lo, hi := g.InIndex[v], g.InIndex[v+1]
			var sum float32
			for k := lo; k < hi; k++ {
				sum += g.InProb[k]
				if diff := g.InAccum[k] - sum; diff > 1e-4 || diff < -1e-4 {
					return fmt.Errorf("graph: InAccum mismatch at vertex %d", v)
				}
			}
			if sum > 1+1e-4 {
				return fmt.Errorf("graph: LT in-weights of %d sum to %f > 1", v, sum)
			}
		}
	}
	return nil
}

// Transpose returns the reverse graph: every edge (u,v) becomes (v,u),
// keeping its IC probability. Running IMM on the transpose answers the
// dual question — which vertices are most influenced — which is how
// outbreak-detection sensor placement maps onto influence maximization.
// Only IC graphs can be transposed: LT in-weight normalization does not
// survive edge reversal.
func (g *Graph) Transpose() (*Graph, error) {
	if g.model != IC {
		return nil, fmt.Errorf("graph: only IC graphs can be transposed (LT weights are direction-normalized)")
	}
	return &Graph{
		N:        g.N,
		M:        g.M,
		OutIndex: g.InIndex,
		OutEdges: g.InEdges,
		OutProb:  g.InProb,
		InIndex:  g.OutIndex,
		InEdges:  g.OutEdges,
		InProb:   g.OutProb,
		model:    IC,
	}, nil
}

// DegreeStats summarizes the degree distribution of a graph.
type DegreeStats struct {
	MaxOut, MaxIn   int64
	MeanOut, MeanIn float64
	// Gini of the out-degree distribution: 0 is perfectly even, values
	// near 1 indicate the heavy skew typical of social networks.
	GiniOut float64
	Zeros   int64 // vertices with neither in- nor out-edges
}

// Degrees computes degree statistics in one pass.
func (g *Graph) Degrees() DegreeStats {
	var st DegreeStats
	if g.N == 0 {
		return st
	}
	outs := make([]int64, g.N)
	var sumOut, sumIn int64
	for u := int32(0); u < g.N; u++ {
		od, id := g.OutDegree(u), g.InDegree(u)
		outs[u] = od
		sumOut += od
		sumIn += id
		if od > st.MaxOut {
			st.MaxOut = od
		}
		if id > st.MaxIn {
			st.MaxIn = id
		}
		if od == 0 && id == 0 {
			st.Zeros++
		}
	}
	st.MeanOut = float64(sumOut) / float64(g.N)
	st.MeanIn = float64(sumIn) / float64(g.N)
	sort.Slice(outs, func(i, j int) bool { return outs[i] < outs[j] })
	// Gini = (2*sum(i*x_i))/(n*sum(x)) - (n+1)/n with 1-based ranks.
	var weighted float64
	for i, x := range outs {
		weighted += float64(i+1) * float64(x)
	}
	if sumOut > 0 {
		n := float64(g.N)
		st.GiniOut = 2*weighted/(n*float64(sumOut)) - (n+1)/n
	}
	return st
}
