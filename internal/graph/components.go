package graph

// Structural analyses used for the paper's graph characterization
// (Section III.A): the giant SCC is the property that makes RRR sets
// cover most of the graph under IC.

// SCC computes strongly connected components with an iterative Tarjan
// algorithm (explicit stack — the SNAP-scale graphs would overflow the
// goroutine stack with recursion). It returns the component id of every
// vertex and the number of components; ids are assigned in reverse
// topological order of the condensation.
func (g *Graph) SCC() (comp []int32, count int32) {
	const unvisited = -1
	n := g.N
	comp = make([]int32, n)
	index := make([]int32, n)
	lowlink := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int32
	var next int32

	// Explicit DFS frames: vertex plus position within its out-segment.
	type frame struct {
		v   int32
		ei  int64
		end int64
	}
	var frames []frame

	for root := int32(0); root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames = frames[:0]
		index[root] = next
		lowlink[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		frames = append(frames, frame{root, g.OutIndex[root], g.OutIndex[root+1]})

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < f.end {
				w := g.OutEdges[f.ei]
				f.ei++
				if index[w] == unvisited {
					index[w] = next
					lowlink[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, g.OutIndex[w], g.OutIndex[w+1]})
				} else if onStack[w] && index[w] < lowlink[f.v] {
					lowlink[f.v] = index[w]
				}
				continue
			}
			// Frame finished: pop and propagate lowlink to parent.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				if p := &frames[len(frames)-1]; lowlink[v] < lowlink[p.v] {
					lowlink[p.v] = lowlink[v]
				}
			}
			if lowlink[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = count
					if w == v {
						break
					}
				}
				count++
			}
		}
	}
	return comp, count
}

// LargestSCCFraction returns the fraction of vertices in the largest
// strongly connected component — the "giant SCC" statistic from the
// paper's motivation section.
func (g *Graph) LargestSCCFraction() float64 {
	if g.N == 0 {
		return 0
	}
	comp, count := g.SCC()
	sizes := make([]int64, count)
	for _, c := range comp {
		sizes[c]++
	}
	var max int64
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	return float64(max) / float64(g.N)
}

// WCC computes weakly connected components (treating edges as
// undirected) with an iterative union-find and returns component ids and
// count.
func (g *Graph) WCC() (comp []int32, count int32) {
	parent := make([]int32, g.N)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	for u := int32(0); u < g.N; u++ {
		for _, v := range g.OutNeighbors(u) {
			ru, rv := find(u), find(v)
			if ru != rv {
				parent[ru] = rv
			}
		}
	}
	comp = make([]int32, g.N)
	remap := make(map[int32]int32)
	for v := int32(0); v < g.N; v++ {
		r := find(v)
		id, ok := remap[r]
		if !ok {
			id = count
			remap[r] = id
			count++
		}
		comp[v] = id
	}
	return comp, count
}
