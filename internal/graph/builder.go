package graph

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// Edge is a directed edge used during graph construction.
type Edge struct {
	Src, Dst int32
}

// Builder accumulates edges and produces an immutable Graph. Duplicate
// edges and self-loops are dropped, matching the preprocessing applied to
// the SNAP datasets in the paper's artifact.
type Builder struct {
	n     int32
	edges []Edge
}

// NewBuilder returns a builder for a graph with n vertices.
func NewBuilder(n int32) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n}
}

// AddEdge records the directed edge (src, dst). Out-of-range endpoints
// panic: edges come from our own generators and loaders, which validate
// inputs, so a bad id here is a programming error.
func (b *Builder) AddEdge(src, dst int32) {
	if src < 0 || src >= b.n || dst < 0 || dst >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", src, dst, b.n))
	}
	b.edges = append(b.edges, Edge{src, dst})
}

// AddUndirected records both directions of an undirected edge, mirroring
// how the paper treats the undirected SNAP community graphs.
func (b *Builder) AddUndirected(a, c int32) {
	b.AddEdge(a, c)
	b.AddEdge(c, a)
}

// EdgeCount returns the number of edges recorded so far (before dedup).
func (b *Builder) EdgeCount() int { return len(b.edges) }

// Build finalizes the CSR arrays and attaches diffusion parameters for
// model using the given seed. See AssignIC and AssignLT for the weighting
// schemes.
func (b *Builder) Build(model Model, seed uint64) (*Graph, error) {
	g, err := b.buildTopology()
	if err != nil {
		return nil, err
	}
	switch model {
	case IC:
		AssignIC(g, seed)
	case LT:
		AssignLT(g, seed)
	default:
		return nil, fmt.Errorf("graph: unknown model %v", model)
	}
	return g, nil
}

// buildTopology sorts, dedups and lays out both CSR directions.
func (b *Builder) buildTopology() (*Graph, error) {
	edges := b.edges
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Src != edges[j].Src {
			return edges[i].Src < edges[j].Src
		}
		return edges[i].Dst < edges[j].Dst
	})
	// Dedup and drop self-loops in place.
	kept := edges[:0]
	for i, e := range edges {
		if e.Src == e.Dst {
			continue
		}
		if i > 0 && e == edges[i-1] {
			continue
		}
		kept = append(kept, e)
	}
	edges = kept
	m := int64(len(edges))

	g := &Graph{
		N:        b.n,
		M:        m,
		OutIndex: make([]int64, b.n+1),
		OutEdges: make([]int32, m),
		InIndex:  make([]int64, b.n+1),
		InEdges:  make([]int32, m),
	}
	for _, e := range edges {
		g.OutIndex[e.Src+1]++
		g.InIndex[e.Dst+1]++
	}
	for i := int32(0); i < b.n; i++ {
		g.OutIndex[i+1] += g.OutIndex[i]
		g.InIndex[i+1] += g.InIndex[i]
	}
	// Out-edges: already sorted by (src, dst), so a single pass fills
	// segments in sorted order.
	for i, e := range edges {
		g.OutEdges[i] = e.Dst
		_ = i
	}
	// In-edges: counting sort by dst preserves src order within a
	// segment because the edge list is sorted by src first.
	cursor := make([]int64, b.n)
	copy(cursor, g.InIndex[:b.n])
	for _, e := range edges {
		g.InEdges[cursor[e.Dst]] = e.Src
		cursor[e.Dst]++
	}
	return g, nil
}

// AssignIC attaches Independent Cascade probabilities: each directed edge
// gets an independent uniform [0,1) probability, the scheme the paper's
// evaluation uses ("we simulate the IC diffusion model by assigning
// uniformly random [0,1] edge probabilities"). Probabilities are drawn
// per incoming edge and mirrored to the forward direction so the two CSR
// views agree edge-for-edge.
func AssignIC(g *Graph, seed uint64) {
	g.model = IC
	g.InProb = make([]float32, g.M)
	g.OutProb = make([]float32, g.M)
	g.InAccum = nil
	r := rng.New(seed)
	for k := range g.InProb {
		g.InProb[k] = r.Float32()
	}
	mirrorInToOut(g)
}

// AssignWC attaches Weighted Cascade probabilities, the classic
// benchmark alternative where p(u,v) = 1/indeg(v). It exercises the same
// code paths as AssignIC with a different sparsity profile and is used by
// ablation experiments.
func AssignWC(g *Graph) {
	g.model = IC
	g.InProb = make([]float32, g.M)
	g.OutProb = make([]float32, g.M)
	g.InAccum = nil
	for v := int32(0); v < g.N; v++ {
		lo, hi := g.InIndex[v], g.InIndex[v+1]
		if hi == lo {
			continue
		}
		p := float32(1) / float32(hi-lo)
		for k := lo; k < hi; k++ {
			g.InProb[k] = p
		}
	}
	mirrorInToOut(g)
}

// AssignLT attaches Linear Threshold weights: for each vertex v the
// incoming weights are drawn uniformly and normalized so that activating
// a neighbor or activating none partitions the unit interval — i.e. the
// weights sum to s in (0,1] and the no-activation mass is 1-s, matching
// the paper's "weights are adjusted so that the probabilities of either
// activating a neighbor or activating none sum to one".
func AssignLT(g *Graph, seed uint64) {
	g.model = LT
	g.InProb = make([]float32, g.M)
	g.OutProb = make([]float32, g.M)
	g.InAccum = make([]float32, g.M)
	r := rng.New(seed)
	for v := int32(0); v < g.N; v++ {
		lo, hi := g.InIndex[v], g.InIndex[v+1]
		if hi == lo {
			continue
		}
		var sum float64
		for k := lo; k < hi; k++ {
			w := r.Float64()
			g.InProb[k] = float32(w)
			sum += w
		}
		// Scale so total incoming weight lands uniformly in (0, 1]: the
		// normalizer is sum / target where target = r in (0,1].
		target := r.Float64()
		if target == 0 {
			target = 1
		}
		scale := float32(target / sum)
		var acc float32
		for k := lo; k < hi; k++ {
			g.InProb[k] *= scale
			acc += g.InProb[k]
			g.InAccum[k] = acc
		}
	}
	mirrorInToOut(g)
}

// mirrorInToOut copies per-in-edge parameters onto the corresponding
// forward edges, using binary search over the sorted out-segments.
func mirrorInToOut(g *Graph) {
	for v := int32(0); v < g.N; v++ {
		for k := g.InIndex[v]; k < g.InIndex[v+1]; k++ {
			u := g.InEdges[k]
			seg := g.OutNeighbors(u)
			base := g.OutIndex[u]
			i := sort.Search(len(seg), func(i int) bool { return seg[i] >= v })
			g.OutProb[base+int64(i)] = g.InProb[k]
		}
	}
}

// FromEdges is a convenience constructor used heavily by tests: build a
// graph over n vertices from an explicit edge list.
func FromEdges(n int32, edges []Edge, model Model, seed uint64) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.Src, e.Dst)
	}
	return b.Build(model, seed)
}
