package graph

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// Delta is a batch of edge additions and removals to apply to an
// immutable Graph. Applying a delta never mutates the input graph; it
// produces a fresh Graph (a new "epoch" in the serving layer's terms)
// whose untouched per-edge parameters are carried over verbatim — that
// carry-over is what makes incremental warm-pool repair meaningful,
// because a from-scratch reweighting would perturb every edge.
//
// Weight policy for changed edges:
//
//   - IC: an added edge keeps its explicit probability from AddProb
//     when provided, otherwise it gets a probability derived
//     deterministically from (Seed, src, dst) — independent of the
//     order edges appear in the delta or of any other edge.
//   - LT: the whole in-segment of every touched vertex is re-derived
//     with AssignLT's per-segment scheme from a per-vertex stream of
//     (Seed, dst), keeping the "activate a neighbor or none" partition
//     invariant; AddProb is ignored. Untouched segments keep their
//     exact weights and prefix sums.
type Delta struct {
	// Add lists directed edges to insert. Endpoints at or beyond the
	// current vertex count grow the graph (CSR growth).
	Add []Edge
	// AddProb optionally carries explicit IC probabilities aligned
	// with Add (len 0 or len(Add)). Ignored for LT graphs.
	AddProb []float32
	// Remove lists directed edges to delete.
	Remove []Edge
	// Seed drives the deterministic weight derivation for added edges
	// (IC) and re-weighted segments (LT).
	Seed uint64
}

// DeltaOptions controls how ApplyDelta treats dirty input.
type DeltaOptions struct {
	// Strict mirrors ingest.DedupeStrict: fail on self-loops,
	// duplicate additions (within the delta or against the graph), and
	// removals of absent edges, instead of silently dropping them.
	Strict bool
}

// DeltaReport describes what ApplyDelta actually did. Dirty is the
// invalidation set the pool-repair machinery consumes: a vertex is
// dirty iff its in-segment changed (membership or weights), which — by
// the sampling argument in DESIGN.md — is exactly the condition under
// which an RRR set containing it must be resampled.
type DeltaReport struct {
	OldN, NewN int32
	OldM, NewM int64
	// Added and Removed count edges actually applied, after dropping
	// self-loops, duplicates, and absent removals.
	Added, Removed int64
	// DroppedSelfLoops, DroppedDuplicates, and MissingRemovals count
	// delta entries ignored in non-strict mode.
	DroppedSelfLoops, DroppedDuplicates, MissingRemovals int64
	// Dirty lists, in ascending order, the vertices whose in-segment
	// changed. When the delta grew the graph (NewN > OldN) every pool
	// slot is invalid regardless of Dirty — the root draw depends on N.
	Dirty []int32
}

// Changed reports whether the delta had any effect on the graph.
func (r *DeltaReport) Changed() bool {
	return r.Added > 0 || r.Removed > 0 || r.NewN != r.OldN
}

// addEdge pairs an addition with its optional explicit probability.
type addEdge struct {
	e       Edge
	prob    float32
	hasProb bool
}

// ApplyDelta applies d to g and returns the post-delta graph and a
// report. The input graph is never mutated; when the delta turns out
// to be a no-op the input graph itself is returned (same pointer) with
// report.Changed() == false. Added edges may reference vertices beyond
// g.N, growing the vertex set; removals of out-of-range or absent
// edges are errors under Strict and counted otherwise.
func ApplyDelta(g *Graph, d Delta, opt DeltaOptions) (*Graph, *DeltaReport, error) {
	if len(d.AddProb) != 0 && len(d.AddProb) != len(d.Add) {
		return nil, nil, fmt.Errorf("graph: delta AddProb length %d does not match Add length %d", len(d.AddProb), len(d.Add))
	}
	rep := &DeltaReport{OldN: g.N, NewN: g.N, OldM: g.M}

	// Normalize additions: reject malformed input, drop (or reject)
	// self-loops, attach explicit probabilities, compute vertex growth.
	adds := make([]addEdge, 0, len(d.Add))
	for i, e := range d.Add {
		if e.Src < 0 || e.Dst < 0 {
			return nil, nil, fmt.Errorf("graph: delta add (%d,%d) has a negative endpoint", e.Src, e.Dst)
		}
		if e.Src == e.Dst {
			if opt.Strict {
				return nil, nil, fmt.Errorf("graph: delta add (%d,%d) is a self-loop", e.Src, e.Dst)
			}
			rep.DroppedSelfLoops++
			continue
		}
		ae := addEdge{e: e}
		if len(d.AddProb) != 0 {
			p := d.AddProb[i]
			if p < 0 || p > 1 {
				return nil, nil, fmt.Errorf("graph: delta add (%d,%d) probability %g outside [0,1]", e.Src, e.Dst, p)
			}
			ae.prob, ae.hasProb = p, true
		}
		adds = append(adds, ae)
		if e.Src >= rep.NewN {
			rep.NewN = e.Src + 1
		}
		if e.Dst >= rep.NewN {
			rep.NewN = e.Dst + 1
		}
	}

	// Normalize removals into a membership set of edges that actually
	// exist. Duplicated removals of one edge collapse silently — the
	// net effect is identical.
	removes := make(map[Edge]struct{}, len(d.Remove))
	for _, e := range d.Remove {
		if e.Src < 0 || e.Dst < 0 {
			return nil, nil, fmt.Errorf("graph: delta remove (%d,%d) has a negative endpoint", e.Src, e.Dst)
		}
		if _, ok := removes[e]; ok {
			continue
		}
		if e.Src >= g.N || e.Dst >= g.N || !g.HasEdge(e.Src, e.Dst) {
			if opt.Strict {
				return nil, nil, fmt.Errorf("graph: delta removes absent edge (%d,%d)", e.Src, e.Dst)
			}
			rep.MissingRemovals++
			continue
		}
		removes[e] = struct{}{}
	}

	// Dedup additions against each other and against surviving graph
	// edges: an edge both removed and re-added in one delta is a
	// reweight, not a duplicate.
	sort.Slice(adds, func(i, j int) bool {
		if adds[i].e.Dst != adds[j].e.Dst {
			return adds[i].e.Dst < adds[j].e.Dst
		}
		return adds[i].e.Src < adds[j].e.Src
	})
	kept := adds[:0]
	for i, ae := range adds {
		dup := i > 0 && ae.e == adds[i-1].e
		if !dup && ae.e.Src < g.N && ae.e.Dst < g.N && g.HasEdge(ae.e.Src, ae.e.Dst) {
			if _, removed := removes[ae.e]; !removed {
				dup = true
			}
		}
		if dup {
			if opt.Strict {
				return nil, nil, fmt.Errorf("graph: delta adds duplicate edge (%d,%d)", ae.e.Src, ae.e.Dst)
			}
			rep.DroppedDuplicates++
			continue
		}
		kept = append(kept, ae)
	}
	adds = kept
	rep.Added = int64(len(adds))
	rep.Removed = int64(len(removes))
	rep.NewM = g.M - rep.Removed + rep.Added

	if rep.Added == 0 && rep.Removed == 0 && rep.NewN == g.N {
		rep.NewM = g.M
		return g, rep, nil
	}

	ng, err := rebuildCSR(g, adds, removes, rep)
	if err != nil {
		return nil, nil, err
	}
	reweight(g, ng, d.Seed, rep)
	mirrorInToOut(ng)
	ng.model = g.model
	if err := ng.Validate(); err != nil {
		return nil, nil, fmt.Errorf("graph: post-delta graph invalid: %w", err)
	}
	return ng, rep, nil
}

// rebuildCSR assembles the post-delta topology. Kept in-edges carry
// their old InProb values (LT dirty segments are re-derived afterwards
// by reweight); added edges get a placeholder filled in by reweight.
// It also records the dirty vertices — those whose in-segment changed.
func rebuildCSR(g *Graph, adds []addEdge, removes map[Edge]struct{}, rep *DeltaReport) (*Graph, error) {
	n, m := rep.NewN, rep.NewM
	ng := &Graph{
		N:        n,
		M:        m,
		OutIndex: make([]int64, n+1),
		OutEdges: make([]int32, m),
		OutProb:  make([]float32, m),
		InIndex:  make([]int64, n+1),
		InEdges:  make([]int32, m),
		InProb:   make([]float32, m),
	}
	if g.Model() == LT {
		ng.InAccum = make([]float32, m)
	}

	// In-direction: merge each old segment (minus removals) with the
	// dst-grouped additions, preserving strictly ascending src order.
	ai := 0 // cursor into adds, sorted by (dst, src)
	pos := int64(0)
	for v := int32(0); v < n; v++ {
		segChanged := false
		var lo, hi int64
		if v < g.N {
			lo, hi = g.InIndex[v], g.InIndex[v+1]
		}
		k := lo
		for k < hi || (ai < len(adds) && adds[ai].e.Dst == v) {
			takeAdd := ai < len(adds) && adds[ai].e.Dst == v &&
				(k >= hi || adds[ai].e.Src < g.InEdges[k])
			if takeAdd {
				ng.InEdges[pos] = adds[ai].e.Src
				// NaN marks "derive me"; reweight resolves it. An
				// explicit probability (including 0) is kept as-is.
				p := float32(math.NaN())
				if adds[ai].hasProb {
					p = adds[ai].prob
				}
				ng.InProb[pos] = p
				pos++
				ai++
				segChanged = true
				continue
			}
			src := g.InEdges[k]
			if _, gone := removes[Edge{src, v}]; gone {
				k++
				segChanged = true
				continue
			}
			ng.InEdges[pos] = src
			ng.InProb[pos] = g.InProb[k]
			pos++
			k++
		}
		ng.InIndex[v+1] = pos
		if segChanged {
			rep.Dirty = append(rep.Dirty, v)
		}
	}
	if pos != m {
		return nil, fmt.Errorf("graph: delta in-edge accounting mismatch: %d != %d", pos, m)
	}

	// Out-direction: same merge grouped by src. Probabilities are
	// mirrored from the in-direction afterwards.
	bySrc := make([]Edge, len(adds))
	for i, ae := range adds {
		bySrc[i] = ae.e
	}
	sort.Slice(bySrc, func(i, j int) bool {
		if bySrc[i].Src != bySrc[j].Src {
			return bySrc[i].Src < bySrc[j].Src
		}
		return bySrc[i].Dst < bySrc[j].Dst
	})
	ai = 0
	pos = 0
	for v := int32(0); v < n; v++ {
		var lo, hi int64
		if v < g.N {
			lo, hi = g.OutIndex[v], g.OutIndex[v+1]
		}
		k := lo
		for k < hi || (ai < len(bySrc) && bySrc[ai].Src == v) {
			takeAdd := ai < len(bySrc) && bySrc[ai].Src == v &&
				(k >= hi || bySrc[ai].Dst < g.OutEdges[k])
			if takeAdd {
				ng.OutEdges[pos] = bySrc[ai].Dst
				pos++
				ai++
				continue
			}
			dst := g.OutEdges[k]
			if _, gone := removes[Edge{v, dst}]; gone {
				k++
				continue
			}
			ng.OutEdges[pos] = dst
			pos++
			k++
		}
		ng.OutIndex[v+1] = pos
	}
	if pos != m {
		return nil, fmt.Errorf("graph: delta out-edge accounting mismatch: %d != %d", pos, m)
	}
	return ng, nil
}

// reweight finalizes per-edge parameters on the post-delta graph:
// derived IC probabilities for added edges without explicit ones, and
// full per-segment LT re-derivation (weights + prefix sums) for dirty
// vertices. Untouched LT segments copy their old prefix sums verbatim
// so carried-over weights stay bit-identical.
func reweight(g, ng *Graph, seed uint64, rep *DeltaReport) {
	switch g.Model() {
	case IC:
		// Only added edges carry the NaN placeholder, and added edges
		// only appear in dirty segments.
		for _, v := range rep.Dirty {
			for k := ng.InIndex[v]; k < ng.InIndex[v+1]; k++ {
				if math.IsNaN(float64(ng.InProb[k])) {
					ng.InProb[k] = derivedProb(seed, ng.InEdges[k], v)
				}
			}
		}
	case LT:
		di := 0
		dirty := rep.Dirty
		for v := int32(0); v < ng.N; v++ {
			lo, hi := ng.InIndex[v], ng.InIndex[v+1]
			if di < len(dirty) && dirty[di] == v {
				di++
				if hi == lo {
					continue
				}
				// Re-derive the whole segment, AssignLT-style, from a
				// stream keyed by (seed, v) — deterministic regardless
				// of what else the delta touched.
				r := rng.NewStream(seed, int(v))
				var sum float64
				for k := lo; k < hi; k++ {
					w := r.Float64()
					ng.InProb[k] = float32(w)
					sum += w
				}
				target := r.Float64()
				if target == 0 {
					target = 1
				}
				scale := float32(target / sum)
				var acc float32
				for k := lo; k < hi; k++ {
					ng.InProb[k] *= scale
					acc += ng.InProb[k]
					ng.InAccum[k] = acc
				}
				continue
			}
			// Untouched segment: weights were carried over by
			// rebuildCSR; copy the prefix sums bit-for-bit too.
			if v < g.N {
				copy(ng.InAccum[lo:hi], g.InAccum[g.InIndex[v]:g.InIndex[v+1]])
			}
		}
	}
}

// derivedProb maps (seed, src, dst) to a uniform [0,1) probability the
// same way rng.Float32 would, through a SplitMix64 finalizer over the
// edge identity. One added edge always gets the same probability no
// matter what else is in the delta.
func derivedProb(seed uint64, src, dst int32) float32 {
	sm := rng.NewSplitMix64(seed ^ (uint64(uint32(src))<<32 | uint64(uint32(dst))))
	sm.Next() // decorrelate nearby edge ids
	return float32(sm.Next()>>40) / (1 << 24)
}
