package diffusion

import (
	"sync"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/rng"
)

// simulateIC runs one forward IC cascade from seeds and returns the
// number of activated vertices. Scratch structures are provided by the
// caller for reuse.
func simulateIC(g *graph.Graph, seeds []int32, r *rng.Xoshiro256, active *bitset.Bitset, frontier, touched []int32) (int, []int32, []int32) {
	count := 0
	frontier = frontier[:0]
	touched = touched[:0]
	for _, s := range seeds {
		if !active.TestAndSet(int(s)) {
			frontier = append(frontier, s)
			touched = append(touched, s)
			count++
		}
	}
	for qi := 0; qi < len(frontier); qi++ {
		u := frontier[qi]
		lo, hi := g.OutIndex[u], g.OutIndex[u+1]
		for k := lo; k < hi; k++ {
			v := g.OutEdges[k]
			if active.Test(int(v)) {
				continue
			}
			if r.Float32() < g.OutProb[k] {
				active.Set(int(v))
				frontier = append(frontier, v)
				touched = append(touched, v)
				count++
			}
		}
	}
	active.ClearList(touched)
	return count, frontier, touched
}

// simulateLT runs one forward LT cascade. Thresholds are drawn uniformly
// per vertex per run; a vertex activates when the cumulative weight of
// its active in-neighbors reaches its threshold.
func simulateLT(g *graph.Graph, seeds []int32, r *rng.Xoshiro256, active *bitset.Bitset, frontier, touched []int32, thresh, acc []float32) (int, []int32, []int32) {
	count := 0
	frontier = frontier[:0]
	touched = touched[:0]
	for _, s := range seeds {
		if !active.TestAndSet(int(s)) {
			frontier = append(frontier, s)
			touched = append(touched, s)
			count++
		}
	}
	for qi := 0; qi < len(frontier); qi++ {
		u := frontier[qi]
		lo, hi := g.OutIndex[u], g.OutIndex[u+1]
		for k := lo; k < hi; k++ {
			v := g.OutEdges[k]
			if active.Test(int(v)) {
				continue
			}
			if thresh[v] < 0 {
				thresh[v] = float32(r.Float64())
				// Guard against a zero threshold auto-activating
				// isolated vertices with zero accumulated weight.
				if thresh[v] == 0 {
					thresh[v] = 1e-9
				}
			}
			acc[v] += g.OutProb[k]
			if acc[v] >= thresh[v] {
				active.Set(int(v))
				frontier = append(frontier, v)
				touched = append(touched, v)
				count++
			}
		}
	}
	// Reset lazy per-run state only where touched: thresholds and
	// accumulators of every vertex examined. Conservatively reset via
	// out-neighbors of activated vertices.
	for _, u := range touched {
		for _, v := range g.OutNeighbors(u) {
			thresh[v] = -1
			acc[v] = 0
		}
	}
	active.ClearList(touched)
	return count, frontier, touched
}

// EstimateSpread estimates σ(seeds) with runs forward Monte-Carlo
// simulations split across workers. The estimator is unbiased; the
// standard error shrinks as 1/sqrt(runs).
func EstimateSpread(g *graph.Graph, seeds []int32, runs, workers int, seed uint64) float64 {
	if runs <= 0 || len(seeds) == 0 {
		return 0
	}
	if workers < 1 {
		workers = 1
	}
	totals := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.NewStream(seed, w)
			active := bitset.New(int(g.N))
			var frontier, touched []int32
			var thresh, acc []float32
			if g.Model() == graph.LT {
				thresh = make([]float32, g.N)
				acc = make([]float32, g.N)
				for i := range thresh {
					thresh[i] = -1
				}
			}
			var local int64
			for i := w; i < runs; i += workers {
				var c int
				if g.Model() == graph.LT {
					c, frontier, touched = simulateLT(g, seeds, r, active, frontier, touched, thresh, acc)
				} else {
					c, frontier, touched = simulateIC(g, seeds, r, active, frontier, touched)
				}
				local += int64(c)
			}
			totals[w] = local
		}(w)
	}
	wg.Wait()
	var sum int64
	for _, v := range totals {
		sum += v
	}
	return float64(sum) / float64(runs)
}

// GreedySpread computes a seed set of size k by exhaustive greedy
// forward simulation: at each step it adds the vertex with the best
// marginal Monte-Carlo spread. Exponentially slower than IMM — only for
// validating seed quality on tiny graphs in tests.
func GreedySpread(g *graph.Graph, k, runs, workers int, seed uint64) []int32 {
	var seeds []int32
	chosen := make(map[int32]bool, k)
	for len(seeds) < k && len(seeds) < int(g.N) {
		bestV, bestS := int32(-1), -1.0
		for v := int32(0); v < g.N; v++ {
			if chosen[v] {
				continue
			}
			s := EstimateSpread(g, append(seeds, v), runs, workers, seed)
			if s > bestS {
				bestV, bestS = v, s
			}
		}
		seeds = append(seeds, bestV)
		chosen[bestV] = true
	}
	return seeds
}
