package diffusion

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// lineGraph returns 0→1→2→…→(n-1) with all probabilities forced to p.
func lineGraph(t *testing.T, n int32, p float32, model graph.Model) *graph.Graph {
	t.Helper()
	edges := make([]graph.Edge, 0, n-1)
	for i := int32(0); i < n-1; i++ {
		edges = append(edges, graph.Edge{Src: i, Dst: i + 1})
	}
	g, err := graph.FromEdges(n, edges, model, 1)
	if err != nil {
		t.Fatal(err)
	}
	forceProb(g, p)
	return g
}

// forceProb overwrites every edge parameter with p and rebuilds InAccum.
func forceProb(g *graph.Graph, p float32) {
	for i := range g.InProb {
		g.InProb[i] = p
	}
	for i := range g.OutProb {
		g.OutProb[i] = p
	}
	if g.Model() == graph.LT {
		for v := int32(0); v < g.N; v++ {
			var acc float32
			for k := g.InIndex[v]; k < g.InIndex[v+1]; k++ {
				acc += g.InProb[k]
				g.InAccum[k] = acc
			}
		}
	}
}

func TestICSampleCertainEdges(t *testing.T) {
	// With p=1 the RRR set of root v is every vertex that reaches v.
	g := lineGraph(t, 10, 1, graph.IC)
	s := NewSampler(g)
	r := rng.New(1)
	out := s.Sample(r, 9, nil)
	if len(out) != 10 {
		t.Fatalf("RRR(9) size = %d, want 10 (whole chain)", len(out))
	}
	out = s.Sample(r, 0, nil)
	if len(out) != 1 || out[0] != 0 {
		t.Fatalf("RRR(0) = %v, want {0} (nothing reaches vertex 0)", out)
	}
}

func TestICSampleImpossibleEdges(t *testing.T) {
	g := lineGraph(t, 10, 0, graph.IC)
	s := NewSampler(g)
	r := rng.New(1)
	for root := int32(0); root < 10; root++ {
		out := s.Sample(r, root, nil)
		if len(out) != 1 || out[0] != root {
			t.Fatalf("RRR(%d) = %v with p=0", root, out)
		}
	}
}

func TestSamplerScratchReuseIsClean(t *testing.T) {
	// After a huge sample, a following sample must not see stale visited
	// bits.
	g := lineGraph(t, 100, 1, graph.IC)
	s := NewSampler(g)
	r := rng.New(1)
	first := s.Sample(r, 99, nil)
	if len(first) != 100 {
		t.Fatalf("first sample size %d", len(first))
	}
	second := s.Sample(r, 99, nil)
	if len(second) != 100 {
		t.Fatalf("stale visited bits: second sample size %d", len(second))
	}
}

func TestSampleAppendsToOut(t *testing.T) {
	g := lineGraph(t, 5, 1, graph.IC)
	s := NewSampler(g)
	r := rng.New(1)
	prefix := []int32{42}
	out := s.Sample(r, 2, prefix)
	if out[0] != 42 || len(out) != 4 { // 42 + {2,1,0}
		t.Fatalf("append semantics broken: %v", out)
	}
}

func TestLTSampleWalkOnCycle(t *testing.T) {
	// Cycle with weight-1 edges: the reverse walk always follows the
	// single in-edge and stops upon revisiting the root.
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}}
	g, err := graph.FromEdges(3, edges, graph.LT, 1)
	if err != nil {
		t.Fatal(err)
	}
	forceProb(g, 1)
	s := NewSampler(g)
	r := rng.New(1)
	out := s.Sample(r, 0, nil)
	if len(out) != 3 {
		t.Fatalf("LT walk covered %d vertices, want full cycle 3", len(out))
	}
}

func TestLTSampleRespectsZeroWeight(t *testing.T) {
	g := lineGraph(t, 10, 0, graph.LT)
	s := NewSampler(g)
	r := rng.New(1)
	out := s.Sample(r, 5, nil)
	if len(out) != 1 {
		t.Fatalf("LT RRR with zero weights = %v", out)
	}
}

func TestLTSetsAreSmallerThanIC(t *testing.T) {
	// The structural claim from §III.A: on the same topology LT RRR sets
	// are much smaller than IC sets because each step picks one in-edge.
	gic, err := gen.RMAT(gen.DefaultRMAT(10, 8), graph.IC, 3)
	if err != nil {
		t.Fatal(err)
	}
	glt, err := gen.RMAT(gen.DefaultRMAT(10, 8), graph.LT, 3)
	if err != nil {
		t.Fatal(err)
	}
	ic := MeasureCoverage(gic, 300, 2, 9)
	lt := MeasureCoverage(glt, 300, 2, 9)
	if lt.AvgSize >= ic.AvgSize {
		t.Fatalf("LT avg size %.1f not below IC %.1f", lt.AvgSize, ic.AvgSize)
	}
}

func TestSampleDeterministicPerStream(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(8, 4), graph.IC, 5)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := NewSampler(g), NewSampler(g)
	r1, r2 := rng.NewStream(7, 0), rng.NewStream(7, 0)
	for i := 0; i < 50; i++ {
		a := s1.SampleUniformRoot(r1, nil)
		b := s2.SampleUniformRoot(r2, nil)
		if len(a) != len(b) {
			t.Fatalf("sample %d diverged", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("sample %d diverged at %d", i, j)
			}
		}
	}
}

func TestMeasureCoverage(t *testing.T) {
	g := lineGraph(t, 10, 1, graph.IC)
	st := MeasureCoverage(g, 1000, 4, 11)
	if st.Samples != 1000 {
		t.Fatalf("Samples = %d", st.Samples)
	}
	// Root uniform on a p=1 chain: RRR(v) = v+1 vertices, avg = 5.5.
	if math.Abs(st.AvgSize-5.5) > 0.3 {
		t.Fatalf("AvgSize = %v, want ≈5.5", st.AvgSize)
	}
	if st.MaxSize != 10 {
		t.Fatalf("MaxSize = %d, want 10", st.MaxSize)
	}
	if st.MaxCoverage != 1 {
		t.Fatalf("MaxCoverage = %v", st.MaxCoverage)
	}
	if st.TotalEdges == 0 {
		t.Fatal("edge work not accounted")
	}
}

func TestEstimateSpreadDeterministicGraphs(t *testing.T) {
	// p=1 chain: seeding vertex 0 activates everything.
	g := lineGraph(t, 20, 1, graph.IC)
	if got := EstimateSpread(g, []int32{0}, 100, 2, 3); got != 20 {
		t.Fatalf("spread = %v, want 20", got)
	}
	// p=0: only the seeds themselves.
	g0 := lineGraph(t, 20, 0, graph.IC)
	if got := EstimateSpread(g0, []int32{3, 7}, 100, 2, 3); got != 2 {
		t.Fatalf("spread = %v, want 2", got)
	}
	// Duplicate seeds count once.
	if got := EstimateSpread(g0, []int32{3, 3}, 10, 1, 3); got != 1 {
		t.Fatalf("duplicate seeds spread = %v, want 1", got)
	}
}

func TestEstimateSpreadLTChain(t *testing.T) {
	g := lineGraph(t, 15, 1, graph.LT)
	if got := EstimateSpread(g, []int32{0}, 50, 2, 3); got != 15 {
		t.Fatalf("LT spread = %v, want 15 (weight-1 chain)", got)
	}
}

func TestEstimateSpreadEmpty(t *testing.T) {
	g := lineGraph(t, 5, 1, graph.IC)
	if got := EstimateSpread(g, nil, 100, 2, 3); got != 0 {
		t.Fatalf("empty seed spread = %v", got)
	}
	if got := EstimateSpread(g, []int32{0}, 0, 2, 3); got != 0 {
		t.Fatalf("zero runs spread = %v", got)
	}
}

// TestRISDuality verifies the identity that makes RIS work:
// n · P[v ∈ RRR(uniform root)] = σ({v}). Both sides are estimated by
// independent Monte Carlo, so this cross-checks the reverse sampler
// against the forward simulator for both models.
func TestRISDuality(t *testing.T) {
	for _, model := range []graph.Model{graph.IC, graph.LT} {
		g, err := gen.ErdosRenyi(60, 240, model, 17)
		if err != nil {
			t.Fatal(err)
		}
		const samples = 60000
		counts := make([]int64, g.N)
		s := NewSampler(g)
		r := rng.New(23)
		var buf []int32
		for i := 0; i < samples; i++ {
			buf = s.SampleUniformRoot(r, buf[:0])
			for _, v := range buf {
				counts[v]++
			}
		}
		// Check the three most frequent vertices plus vertex 0.
		type cand struct {
			v int32
			c int64
		}
		best := []cand{{0, counts[0]}}
		for v := int32(1); v < g.N; v++ {
			best = append(best, cand{v, counts[v]})
		}
		// Partial selection of top 3 by count.
		for i := 0; i < 3; i++ {
			for j := i + 1; j < len(best); j++ {
				if best[j].c > best[i].c {
					best[i], best[j] = best[j], best[i]
				}
			}
		}
		for _, cd := range best[:3] {
			risEst := float64(cd.c) / samples * float64(g.N)
			fwd := EstimateSpread(g, []int32{cd.v}, 20000, 2, 31)
			if fwd == 0 && risEst == 0 {
				continue
			}
			rel := math.Abs(risEst-fwd) / math.Max(fwd, 1)
			if rel > 0.1 {
				t.Errorf("%v: vertex %d RIS estimate %.2f vs forward %.2f (rel err %.3f)",
					model, cd.v, risEst, fwd, rel)
			}
		}
	}
}

func TestGreedySpreadTinyGraph(t *testing.T) {
	// Star: center 0 points at 1..9 with p=1. Greedy's first pick must be
	// the center.
	edges := make([]graph.Edge, 0, 9)
	for i := int32(1); i < 10; i++ {
		edges = append(edges, graph.Edge{Src: 0, Dst: i})
	}
	g, err := graph.FromEdges(10, edges, graph.IC, 1)
	if err != nil {
		t.Fatal(err)
	}
	forceProb(g, 1)
	seeds := GreedySpread(g, 2, 50, 2, 3)
	if len(seeds) != 2 || seeds[0] != 0 {
		t.Fatalf("greedy seeds = %v, want center first", seeds)
	}
}

type countingProbe struct {
	visited, edge, output int64
}

func (p *countingProbe) TouchVisited(int64) { p.visited++ }
func (p *countingProbe) TouchEdge(int64)    { p.edge++ }
func (p *countingProbe) TouchOutput(int64)  { p.output++ }

func TestProbeReceivesTouches(t *testing.T) {
	g := lineGraph(t, 10, 1, graph.IC)
	s := NewSampler(g)
	probe := &countingProbe{}
	s.Probe = probe
	out := s.Sample(rng.New(1), 9, nil)
	if probe.output != int64(len(out)) {
		t.Fatalf("output touches %d != set size %d", probe.output, len(out))
	}
	if probe.edge == 0 || probe.visited == 0 {
		t.Fatalf("probe missed accesses: %+v", probe)
	}
}

func BenchmarkSampleIC(b *testing.B) {
	g, err := gen.RMAT(gen.DefaultRMAT(12, 8), graph.IC, 5)
	if err != nil {
		b.Fatal(err)
	}
	s := NewSampler(g)
	r := rng.New(1)
	var buf []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = s.SampleUniformRoot(r, buf[:0])
	}
}

func BenchmarkSampleLT(b *testing.B) {
	g, err := gen.RMAT(gen.DefaultRMAT(12, 8), graph.LT, 5)
	if err != nil {
		b.Fatal(err)
	}
	s := NewSampler(g)
	r := rng.New(1)
	var buf []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = s.SampleUniformRoot(r, buf[:0])
	}
}
