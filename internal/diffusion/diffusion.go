// Package diffusion implements the two sides of influence propagation:
//
//   - Reverse influence sampling (RIS): the probabilistic reverse
//     traversals that produce random reverse-reachable (RRR) sets, the
//     core of IMM's sampling phase. Under IC this is a probabilistic BFS
//     over incoming edges; under LT it is a random walk that picks at
//     most one live incoming edge per step (which is why LT RRR sets are
//     small and θ is large, as the paper observes).
//
//   - Forward Monte-Carlo simulation: estimates the expected spread
//     σ(S) of a seed set, used to validate seed quality and by the
//     examples to report campaign reach.
package diffusion

import (
	"sort"
	"sync"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Probe observes the memory operations of a sampler so engines can feed
// cost models (NUMA latency accounting, cache simulation). Index
// arguments are element indices into the respective logical arrays; the
// consumer maps them to addresses. A nil Probe disables instrumentation.
type Probe interface {
	// TouchVisited is called for every visited-bitmap word probe.
	TouchVisited(wordIdx int64)
	// TouchEdge is called for every CSR in-edge inspected.
	TouchEdge(edgeIdx int64)
	// TouchOutput is called for every vertex appended to the RRR set.
	TouchOutput(i int64)
}

// Sampler holds the per-worker scratch state for RRR generation: a
// visited bitmap and a BFS queue, reused across millions of samples.
// Each worker owns one Sampler; none of its methods are safe for
// concurrent use.
//
// The traversals are written emit-style (SampleEmit): each discovered
// member is handed to a visitor callback instead of being appended to a
// materialized slice. This is the visitor seam of the fused generation
// kernel — consumers fold arena writes, counter increments, and index
// updates into the traversal itself. Sample/SampleUniformRoot remain as
// materializing wrappers over the same cores, so both paths consume RNG
// draws identically and produce byte-identical sets.
type Sampler struct {
	G     *graph.Graph
	Probe Probe

	visited *bitset.Bitset
	queue   []int32

	// out and appendOut implement the materializing wrapper: appendOut is
	// built once per sampler so Sample adds no per-call closure
	// allocation.
	out       []int32
	appendOut func(v int32)

	// EdgesVisited counts in-edges examined, the sampling-phase work
	// metric used by the modeled runtime.
	EdgesVisited int64
}

// NewSampler returns a sampler with scratch sized for g.
func NewSampler(g *graph.Graph) *Sampler {
	s := &Sampler{G: g, visited: bitset.New(int(g.N)), queue: make([]int32, 0, 1024)}
	s.appendOut = func(v int32) {
		s.out = append(s.out, v)
		if s.Probe != nil {
			s.Probe.TouchOutput(int64(len(s.out) - 1))
		}
	}
	return s
}

// Sample generates one RRR set rooted at root, appending the members to
// out (BFS/walk discovery order, root first) and returning the extended
// slice. The graph's model selects the traversal.
func (s *Sampler) Sample(r *rng.Xoshiro256, root int32, out []int32) []int32 {
	s.out = out
	s.SampleEmit(r, root, s.appendOut)
	out = s.out
	s.out = nil
	return out
}

// SampleUniformRoot draws a uniform root and delegates to Sample.
func (s *Sampler) SampleUniformRoot(r *rng.Xoshiro256, out []int32) []int32 {
	return s.Sample(r, int32(r.Uint32n(uint32(s.G.N))), out)
}

// SampleEmit generates one RRR set rooted at root, calling emit(v) for
// each member in discovery order (root first, each vertex exactly once).
// RNG consumption is identical to Sample, so slot-indexed streams yield
// byte-identical member sets on either path. emit must not re-enter the
// sampler.
func (s *Sampler) SampleEmit(r *rng.Xoshiro256, root int32, emit func(v int32)) {
	if s.G.Model() == graph.LT {
		s.sampleLTEmit(r, root, emit)
	} else {
		s.sampleICEmit(r, root, emit)
	}
}

// SampleUniformRootEmit draws a uniform root (the same draw
// SampleUniformRoot makes) and delegates to SampleEmit.
func (s *Sampler) SampleUniformRootEmit(r *rng.Xoshiro256, emit func(v int32)) {
	s.SampleEmit(r, int32(r.Uint32n(uint32(s.G.N))), emit)
}

// sampleICEmit runs a probabilistic BFS over incoming edges: an
// in-neighbor u of an activated vertex w joins with probability p(u,w),
// matching Algorithm 3 of the paper (lines 1-13). The queue doubles as
// the visited list, cleared word-at-a-time on exit.
func (s *Sampler) sampleICEmit(r *rng.Xoshiro256, root int32, emit func(v int32)) {
	g := s.G
	s.visited.Set(int(root))
	if s.Probe != nil {
		s.Probe.TouchVisited(int64(root) / 64)
	}
	emit(root)
	s.queue = append(s.queue[:0], root)
	for qi := 0; qi < len(s.queue); qi++ {
		w := s.queue[qi]
		lo, hi := g.InIndex[w], g.InIndex[w+1]
		s.EdgesVisited += hi - lo
		for k := lo; k < hi; k++ {
			u := g.InEdges[k]
			if s.Probe != nil {
				s.Probe.TouchEdge(k)
				s.Probe.TouchVisited(int64(u) / 64)
			}
			if s.visited.Test(int(u)) {
				continue
			}
			if r.Float32() < g.InProb[k] {
				s.visited.Set(int(u))
				emit(u)
				s.queue = append(s.queue, u)
			}
		}
	}
	s.visited.ClearMany(s.queue)
}

// sampleLTEmit runs the reverse live-edge walk: each vertex picks at
// most one incoming edge (probability proportional to its LT weight,
// none with the residual probability), and the walk follows picks until
// it stalls or revisits. The queue records the path for visited
// clearing.
func (s *Sampler) sampleLTEmit(r *rng.Xoshiro256, root int32, emit func(v int32)) {
	g := s.G
	s.visited.Set(int(root))
	if s.Probe != nil {
		s.Probe.TouchVisited(int64(root) / 64)
	}
	emit(root)
	s.queue = append(s.queue[:0], root)
	w := root
	for {
		lo, hi := g.InIndex[w], g.InIndex[w+1]
		if hi == lo {
			break
		}
		// One uniform draw against the inclusive prefix sums selects the
		// live in-edge; a draw beyond the total weight selects none.
		x := float32(r.Float64())
		total := g.InAccum[hi-1]
		if x >= total {
			s.EdgesVisited++ // the draw still reads the segment header
			break
		}
		seg := g.InAccum[lo:hi]
		j := sort.Search(len(seg), func(i int) bool { return seg[i] > x })
		k := lo + int64(j)
		s.EdgesVisited += int64(j) + 1
		u := g.InEdges[k]
		if s.Probe != nil {
			s.Probe.TouchEdge(k)
			s.Probe.TouchVisited(int64(u) / 64)
		}
		if s.visited.Test(int(u)) {
			break
		}
		s.visited.Set(int(u))
		emit(u)
		s.queue = append(s.queue, u)
		w = u
	}
	s.visited.ClearMany(s.queue)
}

// CoverageStats reports RRR-set size statistics for Table I.
type CoverageStats struct {
	Samples     int
	AvgSize     float64
	MaxSize     int
	AvgCoverage float64 // AvgSize / N
	MaxCoverage float64 // MaxSize / N
	TotalEdges  int64   // traversal work
}

// MeasureCoverage draws samples RRR sets with workers parallel samplers
// and summarizes their sizes. It reproduces the Average/Max RRRset
// Coverage columns of Table I.
func MeasureCoverage(g *graph.Graph, samples, workers int, seed uint64) CoverageStats {
	if workers < 1 {
		workers = 1
	}
	type partial struct {
		count int
		sum   int64
		max   int
		edges int64
	}
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := NewSampler(g)
			r := rng.NewStream(seed, w)
			var buf []int32
			for i := w; i < samples; i += workers {
				buf = s.SampleUniformRoot(r, buf[:0])
				parts[w].count++
				parts[w].sum += int64(len(buf))
				if len(buf) > parts[w].max {
					parts[w].max = len(buf)
				}
			}
			parts[w].edges = s.EdgesVisited
		}(w)
	}
	wg.Wait()
	var st CoverageStats
	var sum int64
	for _, p := range parts {
		st.Samples += p.count
		sum += p.sum
		if p.max > st.MaxSize {
			st.MaxSize = p.max
		}
		st.TotalEdges += p.edges
	}
	if st.Samples > 0 {
		st.AvgSize = float64(sum) / float64(st.Samples)
	}
	if g.N > 0 {
		st.AvgCoverage = st.AvgSize / float64(g.N)
		st.MaxCoverage = float64(st.MaxSize) / float64(g.N)
	}
	return st
}
