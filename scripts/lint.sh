#!/usr/bin/env sh
# scripts/lint.sh — the repo's `make lint` equivalent: formatting, the
# stock vet suite, and the repo's own invariant analyzers (cmd/imlint)
# in both driver modes. CI's imlint job runs exactly this script, so a
# clean local run is a clean gate.
#
# The two imlint modes must agree diagnostic-for-diagnostic: standalone
# loads and checks every package in one process; vettool mode is the
# `go vet -vettool` unitchecker protocol, one invocation per package
# with vet's own caching. Running both catches driver drift.
set -eu

cd "$(dirname "$0")/.."

echo '== gofmt'
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo '== go vet'
go vet ./...

imlint="${TMPDIR:-/tmp}/imlint.$$"
trap 'rm -f "$imlint"' EXIT
echo '== build imlint'
go build -o "$imlint" ./cmd/imlint

echo '== imlint (standalone)'
"$imlint" ./...

echo '== imlint (go vet -vettool)'
go vet -vettool="$imlint" ./...

echo 'lint: clean'
