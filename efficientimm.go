// Package efficientimm is a Go implementation of EfficientIMM —
// "Enhancing Scalability and Performance in Influence Maximization with
// Optimized Parallel Processing" (SC 2024) — together with a faithful
// port of the Ripples baseline it is evaluated against.
//
// Influence Maximization selects k seed vertices of a social graph that
// maximize the expected diffusion spread under the Independent Cascade
// (IC) or Linear Threshold (LT) model. Both engines implement the IMM
// algorithm of Tang et al. (SIGMOD'15); they differ in how the two hot
// kernels — Generate_RRRsets and Find_Most_Influential_Set — are
// parallelized. See DESIGN.md for the system inventory and EXPERIMENTS.md
// for the reproduction of every table and figure in the paper.
//
// Quick start:
//
//	g, err := efficientimm.GenerateProfile("web-Google", efficientimm.IC, 1)
//	if err != nil { ... }
//	opt := efficientimm.Defaults()
//	opt.K = 50
//	opt.Workers = runtime.NumCPU()
//	res, err := efficientimm.Run(g, opt)
//	// res.Seeds are the chosen influencers.
package efficientimm

import (
	"io"

	"repro/internal/diffusion"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/imm"
	"repro/internal/ingest"
)

// Re-exported core types. Aliases keep the internal packages as the
// single source of truth while giving users one import.
type (
	// Graph is an immutable CSR directed graph with diffusion
	// parameters. Construct through Load*, Generate* or Builder.
	Graph = graph.Graph
	// Model selects the diffusion model (IC or LT).
	Model = graph.Model
	// Edge is a directed edge for Builder-based construction.
	Edge = graph.Edge
	// Builder accumulates edges into a Graph.
	Builder = graph.Builder
	// Options configures Run.
	Options = imm.Options
	// Result carries the selected seeds and run statistics.
	Result = imm.Result
	// EngineKind selects the parallel engine.
	EngineKind = imm.EngineKind
	// Breakdown is the per-phase cost report inside Result.
	Breakdown = imm.Breakdown
	// PoolKind selects the RRR pool representation (slices or
	// compressed).
	PoolKind = imm.PoolKind
	// SelectionKind selects the seed-selection kernel (CELF or scan).
	SelectionKind = imm.SelectionKind
	// KernelKind selects the generation kernel (fused streaming or
	// materialized).
	KernelKind = imm.KernelKind
	// PoolFootprint reports resident pool bytes inside Result.
	PoolFootprint = imm.PoolFootprint
	// CoverageStats summarizes RRR-set sizes (Table I methodology).
	CoverageStats = diffusion.CoverageStats
	// Profile describes a calibrated clone of one of the paper's SNAP
	// datasets.
	Profile = gen.Profile
)

// Diffusion models.
const (
	IC = graph.IC
	LT = graph.LT
)

// Engines.
const (
	// EngineRipples is the baseline (Minutoli et al.).
	EngineRipples = imm.Ripples
	// EngineEfficient is the paper's EfficientIMM.
	EngineEfficient = imm.Efficient
)

// Pool representations and selection kernels.
const (
	// PoolSlices stores sparse sets as plain sorted []int32 lists.
	PoolSlices = imm.PoolSlices
	// PoolCompressed stores sparse sets as delta-encoded member lists
	// (dense sets become bitset rows under the adaptive policy).
	PoolCompressed = imm.PoolCompressed
	// SelectCELF is the parallel lazy-greedy selection (default).
	SelectCELF = imm.SelectCELF
	// SelectScan is the eager argmax-and-update selection.
	SelectScan = imm.SelectScan
	// KernelFused streams each RRR set into storage, counter, and index
	// as it is produced (default).
	KernelFused = imm.KernelFused
	// KernelMaterialized is the legacy produce-then-scan generation
	// pipeline, kept as the differential-testing reference.
	KernelMaterialized = imm.KernelMaterialized
)

// Defaults returns the paper's evaluation options (k=50, ε=0.5, all
// optimizations enabled). Set Workers explicitly.
func Defaults() Options { return imm.Defaults() }

// Run executes IMM on g and returns the seed set with statistics.
func Run(g *Graph, opt Options) (*Result, error) { return imm.Run(g, opt) }

// ParseModel converts "IC"/"LT" to a Model.
func ParseModel(s string) (Model, error) { return graph.ParseModel(s) }

// ParseEngine converts "ripples"/"efficientimm" to an EngineKind.
func ParseEngine(s string) (EngineKind, error) { return imm.ParseEngine(s) }

// ParsePool converts "slices"/"compressed" to a PoolKind.
func ParsePool(s string) (PoolKind, error) { return imm.ParsePool(s) }

// ParseSelection converts "celf"/"scan" to a SelectionKind.
func ParseSelection(s string) (SelectionKind, error) { return imm.ParseSelection(s) }

// ParseKernel converts "fused"/"materialized" to a KernelKind.
func ParseKernel(s string) (KernelKind, error) { return imm.ParseKernel(s) }

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(n int32) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph from an explicit edge list with model
// parameters drawn from seed.
func FromEdges(n int32, edges []Edge, model Model, seed uint64) (*Graph, error) {
	return graph.FromEdges(n, edges, model, seed)
}

// LoadEdgeList reads a SNAP-style edge list ("src dst" per line, '#'
// and '%' comments) and assigns model parameters from seed. It runs the
// parallel ingestion pipeline on all CPUs; the result is byte-identical
// to the sequential loader at any worker count. Use Ingest for control
// over workers, the dedupe policy, and throughput stats.
func LoadEdgeList(r io.Reader, undirected bool, model Model, seed uint64) (*Graph, error) {
	g, _, err := ingest.Reader(r, IngestOptions{Undirected: undirected, Model: model, Seed: seed})
	return g, err
}

// LoadEdgeListFile opens path and ingests it in parallel (see
// LoadEdgeList).
func LoadEdgeListFile(path string, undirected bool, model Model, seed uint64) (*Graph, error) {
	g, _, err := ingest.File(path, IngestOptions{Undirected: undirected, Model: model, Seed: seed})
	return g, err
}

// Parallel ingestion and the binary snapshot codec (internal/ingest).
type (
	// IngestOptions configures the parallel edge-list pipeline.
	IngestOptions = ingest.Options
	// IngestStats reports ingest throughput and dedupe counts.
	IngestStats = ingest.Stats
	// SnapshotInfo is the header metadata of a .imsnap snapshot.
	SnapshotInfo = ingest.SnapshotInfo
)

// SnapshotExt is the conventional file extension of binary graph
// snapshots (".imsnap"); the CLIs key format autodetection on it.
const SnapshotExt = ingest.SnapshotExt

// Dedupe policies for IngestOptions.
const (
	// DedupeSilent drops self-loops and duplicate edges (the Builder
	// semantics; default).
	DedupeSilent = ingest.DedupeSilent
	// DedupeStrict fails ingestion when the input contains any.
	DedupeStrict = ingest.DedupeStrict
)

// Ingest runs the chunked parallel ingestion pipeline over an edge-list
// stream. The produced graph is byte-identical at every worker count.
func Ingest(r io.Reader, opt IngestOptions) (*Graph, IngestStats, error) {
	return ingest.Reader(r, opt)
}

// IngestFile ingests an edge-list file with parallel reads and parses.
func IngestFile(path string, opt IngestOptions) (*Graph, IngestStats, error) {
	return ingest.File(path, opt)
}

// WriteSnapshot writes g as a versioned, checksummed binary .imsnap
// snapshot; seed records the weight-assignment provenance. Reloading a
// snapshot reproduces the exact graph — and therefore the exact seeds —
// of the original ingestion, in milliseconds.
func WriteSnapshot(w io.Writer, g *Graph, seed uint64) error { return ingest.WriteSnapshot(w, g, seed) }

// WriteSnapshotFile creates path and writes the snapshot.
func WriteSnapshotFile(path string, g *Graph, seed uint64) error {
	return ingest.WriteSnapshotFile(path, g, seed)
}

// ReadSnapshot reads a .imsnap snapshot, verifying its checksums.
func ReadSnapshot(r io.Reader) (*Graph, SnapshotInfo, error) { return ingest.ReadSnapshot(r) }

// ReadSnapshotFile opens path and delegates to ReadSnapshot.
func ReadSnapshotFile(path string) (*Graph, SnapshotInfo, error) {
	return ingest.ReadSnapshotFile(path)
}

// Streaming edge deltas (internal/graph.ApplyDelta and the .imdelta
// codec in internal/ingest).
type (
	// Delta is one batch of edge insertions and removals to apply to a
	// graph; weights for added edges derive deterministically from
	// Delta.Seed unless AddProb pins them.
	Delta = graph.Delta
	// DeltaApplyOptions selects strict (fail on drops) or silent
	// application, mirroring the Dedupe ingestion policies.
	DeltaApplyOptions = graph.DeltaOptions
	// DeltaReport accounts one application: edges added/removed,
	// entries dropped, and the dirty-vertex frontier pool repair
	// works from.
	DeltaReport = graph.DeltaReport
	// DeltaInfo is the header metadata of a .imdelta file.
	DeltaInfo = ingest.DeltaInfo
)

// DeltaExt is the conventional file extension of binary edge-delta
// batches (".imdelta").
const DeltaExt = ingest.DeltaExt

// ApplyDelta applies one edge delta to g, returning a new CSR epoch
// (g is never mutated) and the application report. The result is
// byte-identical to rebuilding the post-delta edge set from scratch
// with the same seeds, so warm pools repaired against it (see
// Server.ApplyDelta) answer exactly as cold pools would.
func ApplyDelta(g *Graph, d Delta, opt DeltaApplyOptions) (*Graph, *DeltaReport, error) {
	return graph.ApplyDelta(g, d, opt)
}

// WriteDelta writes d as a versioned, checksummed binary .imdelta batch.
func WriteDelta(w io.Writer, d Delta) error { return ingest.WriteDelta(w, d) }

// WriteDeltaFile creates path and writes the delta batch.
func WriteDeltaFile(path string, d Delta) error { return ingest.WriteDeltaFile(path, d) }

// ReadDelta reads a .imdelta batch, verifying its checksums.
func ReadDelta(r io.Reader) (Delta, DeltaInfo, error) { return ingest.ReadDelta(r) }

// ReadDeltaFile opens path and delegates to ReadDelta.
func ReadDeltaFile(path string) (Delta, DeltaInfo, error) { return ingest.ReadDeltaFile(path) }

// WriteEdgeList writes the graph's forward edges as SNAP-style text.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// WriteEdgeListFile saves the graph's forward edges as a SNAP-style
// text file.
func WriteEdgeListFile(path string, g *Graph) error { return graph.WriteEdgeListFile(path, g) }

// Profiles returns the eight calibrated SNAP-dataset clones from the
// paper's Table I.
func Profiles() []Profile { return gen.Profiles() }

// GenerateProfile materializes one named dataset clone ("com-Amazon",
// "web-Google", "twitter7", ...).
func GenerateProfile(name string, model Model, seed uint64) (*Graph, error) {
	p, err := gen.ProfileByName(name)
	if err != nil {
		return nil, err
	}
	return p.Generate(model, seed)
}

// GenerateRMAT produces a directed R-MAT graph with Graph500 skew:
// 2^scale vertices and ~edgeFactor·2^scale edges.
func GenerateRMAT(scale int, edgeFactor float64, model Model, seed uint64) (*Graph, error) {
	return gen.RMAT(gen.DefaultRMAT(scale, edgeFactor), model, seed)
}

// GenerateBarabasiAlbert produces a preferential-attachment graph with k
// undirected links per new vertex.
func GenerateBarabasiAlbert(n int32, k int, model Model, seed uint64) (*Graph, error) {
	return gen.BarabasiAlbert(n, k, model, seed)
}

// GenerateErdosRenyi produces a uniform random directed graph with m
// edges.
func GenerateErdosRenyi(n int32, m int64, model Model, seed uint64) (*Graph, error) {
	return gen.ErdosRenyi(n, m, model, seed)
}

// GenerateWattsStrogatz produces a small-world graph (ring lattice with
// k neighbors per side, rewiring probability beta).
func GenerateWattsStrogatz(n int32, k int, beta float64, model Model, seed uint64) (*Graph, error) {
	return gen.WattsStrogatz(n, k, beta, model, seed)
}

// DistOptions configures RunDistributed.
type DistOptions = dist.Options

// DistResult is the outcome of a distributed run, including the
// measured communication volume.
type DistResult = dist.Result

// DefaultDistOptions returns the paper's parameters on 4 simulated
// ranks.
func DefaultDistOptions() DistOptions { return dist.DefaultOptions() }

// RunDistributed executes IMM across simulated message-passing ranks —
// the MPI extension the paper lists as future work. It produces exactly
// the same seeds as Run on the same seed, and reports the communication
// volume the distribution costs.
func RunDistributed(g *Graph, opt DistOptions) (*DistResult, error) { return dist.Run(g, opt) }

// RunDistributedSnapshot is RunDistributed with the input graph loaded
// by rank 0 from a .imsnap snapshot and broadcast to the other ranks
// (metered into Comm.GraphBroadcast).
func RunDistributedSnapshot(path string, opt DistOptions) (*DistResult, error) {
	return dist.RunSnapshot(path, opt)
}

// DistComm is the per-phase communication bill of a distributed run:
// modeled bytes/messages for every phase boundary, plus — on networked
// runs — the measured bytes actually sent over TCP and the count of
// locally-redone failover rounds.
type DistComm = dist.Comm

// ClusterConfig places one process in a networked cluster: Rank 0 is
// the root (driver or query front-end), every other rank serves
// generation rounds at its Peers address. It is the one validated
// struct the CLIs, the facade, and the library share — call
// ClusterConfig.Validate before use.
type ClusterConfig = dist.ClusterConfig

// ClusterOptions tunes the cluster transport (dial/frame timeouts,
// reconnect backoff).
type ClusterOptions = dist.ClusterOptions

// Cluster is the root's side of a networked distributed run: one framed
// TCP connection per worker rank, with a measured bytes-on-the-wire
// meter and per-chunk local failover.
type Cluster = dist.Cluster

// RankWorker is a worker rank's server loop: it listens for graph
// broadcasts and generation rounds from the root.
type RankWorker = dist.RankServer

// DefaultClusterOptions returns transport settings suited to LAN and
// loopback clusters.
func DefaultClusterOptions() ClusterOptions { return dist.DefaultClusterOptions() }

// ConnectCluster dials and handshakes every worker rank from the root
// (cfg.Rank must be 0). Close the cluster when done.
func ConnectCluster(cfg ClusterConfig, opt ClusterOptions) (*Cluster, error) {
	return dist.Connect(cfg, opt)
}

// ListenRank starts a worker rank's wire listener on addr (host:port,
// or ":0" for an ephemeral port — read it back with RankWorker.Addr).
// Call RankWorker.Serve to run the accept loop.
func ListenRank(addr string, opt ClusterOptions) (*RankWorker, error) {
	return dist.ListenRank(addr, opt)
}

// RunClusterDistributed is RunDistributed with the non-root ranks'
// generation executed by the cluster's remote worker processes over
// TCP. Seeds are byte-identical to Run and to RunDistributed; the
// result's Comm additionally carries the measured wire bytes next to
// the modeled figures.
func RunClusterDistributed(g *Graph, opt DistOptions, cl *Cluster) (*DistResult, error) {
	return dist.RunCluster(g, opt, cl)
}

// UseWeightedCascade replaces the graph's IC probabilities with the
// classic weighted-cascade assignment p(u,v) = 1/indegree(v), the
// standard benchmark setting when uniform probabilities would saturate
// the cascade.
func UseWeightedCascade(g *Graph) { graph.AssignWC(g) }

// Transpose returns the reverse graph (IC only): run IMM on it to find
// the vertices most influenced rather than most influential — the
// outbreak-detection dual.
func Transpose(g *Graph) (*Graph, error) { return g.Transpose() }

// EstimateSpread estimates σ(seeds) with runs forward Monte-Carlo
// cascades split over workers — use it to validate or report the reach
// of a seed set.
func EstimateSpread(g *Graph, seeds []int32, runs, workers int, seed uint64) float64 {
	return diffusion.EstimateSpread(g, seeds, runs, workers, seed)
}

// MeasureCoverage samples RRR sets and reports their size distribution,
// the Table I characterization.
func MeasureCoverage(g *Graph, samples, workers int, seed uint64) CoverageStats {
	return diffusion.MeasureCoverage(g, samples, workers, seed)
}
