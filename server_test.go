package efficientimm

// Public-facade tests of the warm-pool query service: the served answer
// for (graph, model, k, epsilon, rngSeed) must be byte-identical to a
// cold Run with the same options, cold or warm, direct or over HTTP.

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"
)

func TestServerMatchesRun(t *testing.T) {
	g, err := GenerateRMAT(8, 6, IC, 42)
	if err != nil {
		t.Fatal(err)
	}
	const maxTheta = 4000
	srv := NewServer(ServeOptions{Workers: 2, MaxTheta: maxTheta})
	if _, err := srv.AddGraph("g", g, 42); err != nil {
		t.Fatal(err)
	}

	opt := Defaults()
	opt.K = 8
	opt.Workers = 2
	opt.MaxTheta = maxTheta
	cold, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}

	req := QueryRequest{Graph: "g", K: opt.K, Epsilon: opt.Epsilon, Seed: opt.Seed}
	for i, wantWarm := range []bool{false, true} {
		res, err := srv.Query(req)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Seeds, cold.Seeds) || res.Theta != cold.Theta {
			t.Fatalf("query %d: served %v/θ=%d != Run %v/θ=%d", i, res.Seeds, res.Theta, cold.Seeds, cold.Theta)
		}
		if res.Warm != wantWarm {
			t.Fatalf("query %d: warm=%v, want %v", i, res.Warm, wantWarm)
		}
	}

	// The HTTP front-end serves the same bytes.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/query?graph=g&k=8&eps=0.5&seed=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var httpRes QueryResult
	if err := json.NewDecoder(resp.Body).Decode(&httpRes); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(httpRes.Seeds, cold.Seeds) {
		t.Fatalf("HTTP seeds %v != Run seeds %v", httpRes.Seeds, cold.Seeds)
	}

	st := srv.Stats()
	if st.Queries != 3 || st.WarmHits != 2 || st.HitRatio() <= 0.5 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestServerBatchAndJobs exercises the batched and async front doors of
// the facade: both must return the same bytes as the synchronous path,
// and failures must map onto the exported sentinels.
func TestServerBatchAndJobs(t *testing.T) {
	g, err := GenerateRMAT(8, 6, IC, 42)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ServeOptions{Workers: 2, MaxTheta: 4000})
	if _, err := srv.AddGraph("g", g, 42); err != nil {
		t.Fatal(err)
	}
	req := QueryRequest{Graph: "g", K: 6, Epsilon: 0.5, Seed: 1}
	ref, err := srv.Query(req)
	if err != nil {
		t.Fatal(err)
	}

	items := srv.QueryBatch([]QueryRequest{req, {Graph: "nope", K: 3, Epsilon: 0.5}})
	if items[0].Result == nil || !reflect.DeepEqual(items[0].Result.Seeds, ref.Seeds) {
		t.Fatalf("batch member 0 = %+v, want seeds %v", items[0], ref.Seeds)
	}
	if items[1].Result != nil || items[1].Error == "" {
		t.Fatalf("batch member 1 should fail inline: %+v", items[1])
	}

	job, err := srv.SubmitJob(req)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for job.State != "done" && job.State != "failed" {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", job)
		}
		time.Sleep(5 * time.Millisecond)
		job, _ = srv.Job(job.ID)
	}
	if job.State != "done" || !reflect.DeepEqual(job.Result.Seeds, ref.Seeds) {
		t.Fatalf("job = %+v, want seeds %v", job, ref.Seeds)
	}

	if _, err := srv.Query(QueryRequest{Graph: "nope", K: 3, Epsilon: 0.5}); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("unknown graph returned %v, want ErrUnknownGraph", err)
	}
	if _, err := srv.Query(QueryRequest{Graph: "g", K: -1, Epsilon: 0.5}); !errors.Is(err, ErrInvalidQuery) {
		t.Fatalf("invalid k returned %v, want ErrInvalidQuery", err)
	}
}
