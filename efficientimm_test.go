package efficientimm

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	g, err := GenerateRMAT(9, 6, IC, 42)
	if err != nil {
		t.Fatal(err)
	}
	opt := Defaults()
	opt.K = 8
	opt.Workers = 2
	opt.MaxTheta = 5000
	res, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 8 {
		t.Fatalf("%d seeds", len(res.Seeds))
	}
	spread := EstimateSpread(g, res.Seeds, 500, 2, 1)
	if spread < float64(len(res.Seeds)) {
		t.Fatalf("spread %.1f below seed count", spread)
	}
}

func TestPublicAPIProfiles(t *testing.T) {
	ps := Profiles()
	if len(ps) != 8 {
		t.Fatalf("%d profiles", len(ps))
	}
	p := ps[0]
	p.Scale = 8
	g, err := p.Generate(IC, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := MeasureCoverage(g, 100, 2, 1)
	if st.Samples != 100 {
		t.Fatalf("samples = %d", st.Samples)
	}
}

func TestPublicAPIGenerateProfileByName(t *testing.T) {
	if _, err := GenerateProfile("no-such-dataset", IC, 1); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestPublicAPIBuilderAndIO(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddUndirected(1, 2)
	g, err := b.Build(IC, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := WriteEdgeListFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadEdgeListFile(path, false, IC, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g2.M != g.M {
		t.Fatalf("round trip edges %d vs %d", g2.M, g.M)
	}
}

func TestPublicAPILoadEdgeListReader(t *testing.T) {
	g, err := LoadEdgeList(strings.NewReader("0 1\n1 2\n"), true, LT, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.M != 4 {
		t.Fatalf("N=%d M=%d", g.N, g.M)
	}
}

func TestPublicAPIParsers(t *testing.T) {
	if m, err := ParseModel("LT"); err != nil || m != LT {
		t.Fatal("ParseModel")
	}
	if e, err := ParseEngine("ripples"); err != nil || e != EngineRipples {
		t.Fatal("ParseEngine")
	}
}

func TestPublicAPIGenerators(t *testing.T) {
	if g, err := GenerateBarabasiAlbert(200, 2, IC, 1); err != nil || g.N != 200 {
		t.Fatal("BA generator")
	}
	if g, err := GenerateErdosRenyi(100, 300, IC, 1); err != nil || g.N != 100 {
		t.Fatal("ER generator")
	}
	if g, err := GenerateWattsStrogatz(100, 2, 0.1, IC, 1); err != nil || g.N != 100 {
		t.Fatal("WS generator")
	}
	if _, err := FromEdges(3, []Edge{{Src: 0, Dst: 1}}, IC, 1); err != nil {
		t.Fatal("FromEdges")
	}
}

func TestRunDistributedViaPublicAPI(t *testing.T) {
	g, err := GenerateRMAT(8, 5, IC, 11)
	if err != nil {
		t.Fatal(err)
	}
	opt := Defaults()
	opt.K = 5
	opt.Workers = 2
	opt.Seed = 11
	opt.MaxTheta = 2000
	shared, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	dopt := DefaultDistOptions()
	dopt.Ranks = 3
	dopt.K = 5
	dopt.Seed = 11
	dopt.MaxTheta = 2000
	distRes, err := RunDistributed(g, dopt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range shared.Seeds {
		if shared.Seeds[i] != distRes.Seeds[i] {
			t.Fatalf("distributed run diverged: %v vs %v", distRes.Seeds, shared.Seeds)
		}
	}
	if distRes.Comm.BytesSent == 0 {
		t.Fatal("no communication recorded on 3 ranks")
	}
}

func TestEnginesComparableViaPublicAPI(t *testing.T) {
	g, err := GenerateProfile("com-DBLP", IC, 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = g // full profile too large for a unit test; use a clamped clone
	p := Profiles()[2]
	p.Scale = 8
	g, err = p.Generate(IC, 1)
	if err != nil {
		t.Fatal(err)
	}
	opt := Defaults()
	opt.K = 5
	opt.Workers = 2
	opt.MaxTheta = 2000
	optR := opt
	optR.Engine = EngineRipples
	rEff, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	rRip, err := Run(g, optR)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rEff.Seeds {
		if rEff.Seeds[i] != rRip.Seeds[i] {
			t.Fatalf("engines disagree via public API: %v vs %v", rEff.Seeds, rRip.Seeds)
		}
	}
}

// TestPublicAPIIngestAndSnapshot pins the acceptance loop end to end
// through the public facade: parallel ingestion is worker-count
// invariant, and a snapshot round trip reproduces identical seeds
// through Run and RunDistributed.
func TestPublicAPIIngestAndSnapshot(t *testing.T) {
	src, err := GenerateRMAT(9, 6, IC, 11)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	edgePath := filepath.Join(dir, "g.txt")
	if err := WriteEdgeListFile(edgePath, src); err != nil {
		t.Fatal(err)
	}

	opt := Defaults()
	opt.K = 8
	opt.Workers = 2
	opt.Seed = 11
	opt.MaxTheta = 1500

	var want []int32
	for _, w := range []int{1, 2, 4, 8} {
		g, st, err := IngestFile(edgePath, IngestOptions{Workers: w, Model: IC, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if st.Edges != g.M {
			t.Fatalf("stats disagree with graph: %d vs %d", st.Edges, g.M)
		}
		res, err := Run(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = res.Seeds
		}
		for i := range want {
			if res.Seeds[i] != want[i] {
				t.Fatalf("ingest-workers=%d: seeds diverged at %d", w, i)
			}
		}
	}

	g, _, err := IngestFile(edgePath, IngestOptions{Workers: 4, Model: IC, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "g.imsnap")
	if err := WriteSnapshotFile(snapPath, g, 11); err != nil {
		t.Fatal(err)
	}
	loaded, info, err := ReadSnapshotFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Model != IC || info.Seed != 11 || info.N != g.N || info.M != g.M {
		t.Fatalf("snapshot metadata: %+v", info)
	}
	res, err := Run(loaded, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res.Seeds[i] != want[i] {
			t.Fatal("snapshot reload changed the seeds through Run")
		}
	}

	dopt := DefaultDistOptions()
	dopt.Options = opt
	dopt.Ranks = 3
	dres, err := RunDistributedSnapshot(snapPath, dopt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if dres.Seeds[i] != want[i] {
			t.Fatal("snapshot reload changed the seeds through RunDistributed")
		}
	}
	if dres.Comm.GraphBroadcast.BytesSent == 0 {
		t.Fatal("graph broadcast not metered")
	}
}
